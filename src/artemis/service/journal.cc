#include "src/artemis/service/journal.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace artemis {
namespace {

using jaguar::Json;

Json BugIdsToJson(const std::vector<jaguar::BugId>& bugs) {
  Json arr = Json::Array();
  for (jaguar::BugId b : bugs) {
    arr.Append(static_cast<int64_t>(static_cast<int>(b)));
  }
  return arr;
}

std::vector<jaguar::BugId> BugIdsFromJson(const Json& json) {
  std::vector<jaguar::BugId> out;
  for (const Json& item : json.items()) {
    out.push_back(static_cast<jaguar::BugId>(item.AsInt()));
  }
  return out;
}

Json StringsToJson(const std::vector<std::string>& strings) {
  Json arr = Json::Array();
  for (const std::string& s : strings) {
    arr.Append(s);
  }
  return arr;
}

std::vector<std::string> StringsFromJson(const Json& json) {
  std::vector<std::string> out;
  for (const Json& item : json.items()) {
    out.push_back(item.AsString());
  }
  return out;
}

}  // namespace

Json TriageToJson(const TriageReport& report) {
  Json j = Json::Object();
  j.Set("reproduced", report.reproduced);
  j.Set("kind", static_cast<int64_t>(static_cast<int>(report.kind)));
  j.Set("stage", report.stage);
  j.Set("partner", report.partner);
  j.Set("invariant", report.invariant);
  j.Set("invariant_stage", report.invariant_stage);
  j.Set("candidates", StringsToJson(report.candidates));
  j.Set("detail", report.detail);
  j.Set("runs", static_cast<int64_t>(report.runs));
  if (report.stress) {
    // Written only for stress-replayed triages so pre-stress journals re-serialize (and
    // fingerprint) byte-identically.
    j.Set("stress", true);
    j.Set("stress_seed", report.stress_seed);
  }
  if (report.compile_mode != jaguar::CompileMode::kSync) {
    // Same discipline for the compile axis: sync-mode triages keep their historical shape.
    j.Set("compile_mode", std::string(jaguar::CompileModeName(report.compile_mode)));
    j.Set("schedule_seed", report.schedule_seed);
  }
  return j;
}

bool TriageFromJson(const Json& json, TriageReport* out) {
  if (!json.is_object()) {
    return false;
  }
  TriageReport report;
  report.reproduced = json.Get("reproduced").AsBool();
  report.kind = static_cast<DiscrepancyKind>(json.Get("kind").AsInt());
  report.stage = json.Get("stage").AsString();
  report.partner = json.Get("partner").AsString();
  report.invariant = json.Get("invariant").AsString();
  report.invariant_stage = json.Get("invariant_stage").AsString();
  report.candidates = StringsFromJson(json.Get("candidates"));
  report.detail = json.Get("detail").AsString();
  report.runs = static_cast<int>(json.Get("runs").AsInt());
  report.stress = json.Get("stress").AsBool(false);
  report.stress_seed = json.Get("stress_seed").AsUint(0);
  const std::string& triage_mode = json.Get("compile_mode").AsString();
  if (!triage_mode.empty()) {
    jaguar::ParseCompileMode(triage_mode, &report.compile_mode);
  }
  report.schedule_seed = json.Get("schedule_seed").AsUint(0);
  *out = std::move(report);
  return true;
}

Json BugReportToJson(const BugReport& report) {
  Json j = Json::Object();
  j.Set("seed_id", report.seed_id);
  j.Set("kind", static_cast<int64_t>(static_cast<int>(report.kind)));
  j.Set("root_causes", BugIdsToJson(report.root_causes));
  j.Set("crash_component", static_cast<int64_t>(static_cast<int>(report.crash_component)));
  j.Set("crash_kind", report.crash_kind);
  j.Set("detail", report.detail);
  j.Set("duplicate", report.duplicate);
  if (report.stress) {
    j.Set("stress", true);
    j.Set("stress_seed", report.stress_seed);
  }
  if (report.compile_mode != jaguar::CompileMode::kSync) {
    j.Set("compile_mode", std::string(jaguar::CompileModeName(report.compile_mode)));
    j.Set("schedule_seed", report.schedule_seed);
  }
  if (report.chaos) {
    // Chaos provenance: written only for harness reports from chaos-armed seeds, so every
    // pre-chaos journal re-serializes byte-identically.
    j.Set("chaos", true);
    j.Set("chaos_seed", report.chaos_seed);
  }
  if (report.triaged) {
    j.Set("triage", TriageToJson(report.triage));
  }
  return j;
}

bool BugReportFromJson(const Json& json, BugReport* out) {
  if (!json.is_object()) {
    return false;
  }
  BugReport report;
  report.seed_id = json.Get("seed_id").AsUint();
  report.kind = static_cast<DiscrepancyKind>(json.Get("kind").AsInt());
  report.root_causes = BugIdsFromJson(json.Get("root_causes"));
  report.crash_component = static_cast<jaguar::VmComponent>(json.Get("crash_component").AsInt());
  report.crash_kind = json.Get("crash_kind").AsString();
  report.detail = json.Get("detail").AsString();
  report.duplicate = json.Get("duplicate").AsBool();
  report.stress = json.Get("stress").AsBool(false);
  report.stress_seed = json.Get("stress_seed").AsUint(0);
  const std::string& report_mode = json.Get("compile_mode").AsString();
  if (!report_mode.empty()) {
    jaguar::ParseCompileMode(report_mode, &report.compile_mode);
  }
  report.schedule_seed = json.Get("schedule_seed").AsUint(0);
  report.chaos = json.Get("chaos").AsBool(false);
  report.chaos_seed = json.Get("chaos_seed").AsUint(0);
  if (json.Has("triage")) {
    report.triaged = true;
    if (!TriageFromJson(json.Get("triage"), &report.triage)) {
      return false;
    }
  }
  *out = std::move(report);
  return true;
}

Json ShardToJson(const SeedShardResult& shard) {
  Json j = Json::Object();
  j.Set("seed_id", shard.seed_id);
  j.Set("seed_usable", shard.report.seed_usable);
  j.Set("seed_self_discrepancy", shard.report.seed_self_discrepancy);
  // Of the seed's own runs only the JIT outcome's report-relevant fields matter to the
  // reducer (self-discrepancy bug filing).
  Json seed_jit = Json::Object();
  seed_jit.Set("status", static_cast<int64_t>(static_cast<int>(shard.report.seed_jit.status)));
  seed_jit.Set("fired_bugs", BugIdsToJson(shard.report.seed_jit.fired_bugs));
  seed_jit.Set("crash_component",
               static_cast<int64_t>(static_cast<int>(shard.report.seed_jit.crash_component)));
  seed_jit.Set("crash_kind", shard.report.seed_jit.crash_kind);
  j.Set("seed_jit", std::move(seed_jit));

  Json mutants = Json::Array();
  for (const MutantVerdict& verdict : shard.report.mutants) {
    Json m = Json::Object();
    m.Set("kind", static_cast<int64_t>(static_cast<int>(verdict.kind)));
    m.Set("discarded", verdict.discarded);
    m.Set("non_neutral", verdict.non_neutral);
    m.Set("new_trace", verdict.explored_new_trace);
    m.Set("detail", verdict.detail);
    m.Set("suspected_bugs", BugIdsToJson(verdict.suspected_bugs));
    m.Set("crash_component",
          static_cast<int64_t>(static_cast<int>(verdict.outcome.crash_component)));
    m.Set("crash_kind", verdict.outcome.crash_kind);
    mutants.Append(std::move(m));
  }
  j.Set("mutants", std::move(mutants));

  // Stress points: written only when the shard sampled any, so stress-free journals keep
  // their pre-stress byte shape.
  if (!shard.report.stress_points.empty()) {
    Json points = Json::Array();
    for (const StressVerdict& point : shard.report.stress_points) {
      Json p = Json::Object();
      p.Set("stress_seed", point.stress_seed);
      p.Set("kind", static_cast<int64_t>(static_cast<int>(point.kind)));
      p.Set("discarded", point.discarded);
      p.Set("detail", point.detail);
      p.Set("suspected_bugs", BugIdsToJson(point.suspected_bugs));
      p.Set("crash_component",
            static_cast<int64_t>(static_cast<int>(point.outcome.crash_component)));
      p.Set("crash_kind", point.outcome.crash_kind);
      points.Append(std::move(p));
    }
    j.Set("stress_points", std::move(points));
  }

  if (shard.seed_triaged) {
    j.Set("seed_triage", TriageToJson(shard.seed_triage));
  }
  if (!shard.triaged_mutants.empty()) {
    Json triaged = Json::Array();
    for (const auto& tm : shard.triaged_mutants) {
      Json t = Json::Object();
      t.Set("mutant_index", static_cast<int64_t>(tm.mutant_index));
      t.Set("report", TriageToJson(tm.report));
      triaged.Append(std::move(t));
    }
    j.Set("triaged_mutants", std::move(triaged));
  }
  if (!shard.triaged_stress.empty()) {
    Json triaged = Json::Array();
    for (const auto& ts : shard.triaged_stress) {
      Json t = Json::Object();
      t.Set("stress_index", static_cast<int64_t>(ts.stress_index));
      t.Set("report", TriageToJson(ts.report));
      triaged.Append(std::move(t));
    }
    j.Set("triaged_stress", std::move(triaged));
  }
  if (shard.compile.mode != jaguar::CompileMode::kSync) {
    // Compile-axis provenance, written only when the axis is on so sync journals keep their
    // historical byte shape. Replayed shards must restore it: the reducer stamps it onto
    // every report, and a resume that dropped it would change the campaign digest.
    j.Set("compile", jaguar::CompileConfigToJson(shard.compile));
  }
  if (shard.chaos_fired) {
    // Chaos provenance rides the journal like compile/stress axes: only when the seed fired.
    Json chaos = Json::Object();
    chaos.Set("seed", shard.chaos_seed);
    j.Set("chaos", std::move(chaos));
  }
  if (shard.quarantined) {
    // Quarantine outcome: a resume replays the harness death instead of re-running (and
    // possibly re-crashing on) the seed.
    Json q = Json::Object();
    q.Set("hang", shard.quarantine_hang);
    q.Set("signal", static_cast<int64_t>(shard.quarantine_signal));
    q.Set("retries", static_cast<int64_t>(shard.quarantine_retries));
    q.Set("breadcrumb", shard.quarantine_breadcrumb);
    j.Set("quarantine", std::move(q));
  }
  return j;
}

bool ShardFromJson(const Json& json, SeedShardResult* out) {
  if (!json.is_object() || !json.Has("seed_id")) {
    return false;
  }
  SeedShardResult shard;
  shard.seed_id = json.Get("seed_id").AsUint();
  shard.report.seed_usable = json.Get("seed_usable").AsBool();
  shard.report.seed_self_discrepancy = json.Get("seed_self_discrepancy").AsBool();
  const Json& seed_jit = json.Get("seed_jit");
  shard.report.seed_jit.status = static_cast<jaguar::RunStatus>(seed_jit.Get("status").AsInt());
  shard.report.seed_jit.fired_bugs = BugIdsFromJson(seed_jit.Get("fired_bugs"));
  shard.report.seed_jit.crash_component =
      static_cast<jaguar::VmComponent>(seed_jit.Get("crash_component").AsInt());
  shard.report.seed_jit.crash_kind = seed_jit.Get("crash_kind").AsString();

  for (const Json& m : json.Get("mutants").items()) {
    MutantVerdict verdict;
    verdict.kind = static_cast<DiscrepancyKind>(m.Get("kind").AsInt());
    verdict.discarded = m.Get("discarded").AsBool();
    verdict.non_neutral = m.Get("non_neutral").AsBool();
    verdict.explored_new_trace = m.Get("new_trace").AsBool();
    verdict.detail = m.Get("detail").AsString();
    verdict.suspected_bugs = BugIdsFromJson(m.Get("suspected_bugs"));
    verdict.outcome.crash_component =
        static_cast<jaguar::VmComponent>(m.Get("crash_component").AsInt());
    verdict.outcome.crash_kind = m.Get("crash_kind").AsString();
    shard.report.mutants.push_back(std::move(verdict));
  }

  if (json.Has("seed_triage")) {
    shard.seed_triaged = true;
    if (!TriageFromJson(json.Get("seed_triage"), &shard.seed_triage)) {
      return false;
    }
  }
  for (const Json& p : json.Get("stress_points").items()) {
    StressVerdict point;
    point.stress_seed = p.Get("stress_seed").AsUint();
    point.kind = static_cast<DiscrepancyKind>(p.Get("kind").AsInt());
    point.discarded = p.Get("discarded").AsBool();
    point.detail = p.Get("detail").AsString();
    point.suspected_bugs = BugIdsFromJson(p.Get("suspected_bugs"));
    point.outcome.crash_component =
        static_cast<jaguar::VmComponent>(p.Get("crash_component").AsInt());
    point.outcome.crash_kind = p.Get("crash_kind").AsString();
    shard.report.stress_points.push_back(std::move(point));
  }

  for (const Json& t : json.Get("triaged_mutants").items()) {
    SeedShardResult::TriagedMutant tm;
    tm.mutant_index = static_cast<size_t>(t.Get("mutant_index").AsInt());
    if (!TriageFromJson(t.Get("report"), &tm.report)) {
      return false;
    }
    shard.triaged_mutants.push_back(std::move(tm));
  }
  for (const Json& t : json.Get("triaged_stress").items()) {
    SeedShardResult::TriagedStress ts;
    ts.stress_index = static_cast<size_t>(t.Get("stress_index").AsInt());
    if (!TriageFromJson(t.Get("report"), &ts.report)) {
      return false;
    }
    shard.triaged_stress.push_back(std::move(ts));
  }
  if (json.Has("compile")) {
    shard.compile = jaguar::CompileConfigFromJson(json.Get("compile"));
  }
  if (json.Has("chaos")) {
    shard.chaos_fired = true;
    shard.chaos_seed = json.Get("chaos").Get("seed").AsUint();
  }
  if (json.Has("quarantine")) {
    const Json& q = json.Get("quarantine");
    shard.quarantined = true;
    shard.quarantine_hang = q.Get("hang").AsBool();
    shard.quarantine_signal = static_cast<int>(q.Get("signal").AsInt());
    shard.quarantine_retries = static_cast<int>(q.Get("retries").AsInt());
    shard.quarantine_breadcrumb = q.Get("breadcrumb").AsString();
  }
  *out = std::move(shard);
  return true;
}

Json CampaignParamsToJson(const CampaignParams& params) {
  Json j = Json::Object();
  j.Set("num_seeds", static_cast<int64_t>(params.num_seeds));
  j.Set("base_seed", params.base_seed);
  j.Set("step_budget", params.step_budget);
  j.Set("num_threads", static_cast<int64_t>(params.num_threads));
  j.Set("triage", params.triage);
  if (params.isolation != IsolationMode::kInProcess) {
    // Isolation is an execution strategy (like num_threads): journaled for resume fidelity,
    // but written only when on so historical journals keep their byte shape, and reset by
    // CampaignFingerprint so a sandboxed journal may resume in-process and vice versa.
    j.Set("isolation", std::string(IsolationModeName(params.isolation)));
    Json sandbox = Json::Object();
    sandbox.Set("exec_timeout_ms", static_cast<int64_t>(params.sandbox.exec_timeout_ms));
    sandbox.Set("exec_rss_mb", static_cast<int64_t>(params.sandbox.exec_rss_mb));
    sandbox.Set("grace_ms", static_cast<int64_t>(params.sandbox.grace_ms));
    sandbox.Set("max_retries", static_cast<int64_t>(params.sandbox.max_retries));
    j.Set("sandbox", std::move(sandbox));
  }
  if (params.chaos.rate_pct > 0) {
    // Chaos changes outcomes (quarantined seeds) and therefore joins the fingerprint.
    Json chaos = Json::Object();
    chaos.Set("rate_pct", static_cast<int64_t>(params.chaos.rate_pct));
    chaos.Set("seed", params.chaos.seed);
    chaos.Set("dry_run", params.chaos.dry_run);
    j.Set("chaos", std::move(chaos));
  }

  Json triage = Json::Object();
  triage.Set("pairwise", params.triage_params.pairwise);
  triage.Set("use_verifier", params.triage_params.use_verifier);
  triage.Set("max_stage_runs", static_cast<int64_t>(params.triage_params.max_stage_runs));
  j.Set("triage_params", std::move(triage));

  Json validator = Json::Object();
  validator.Set("max_iter", static_cast<int64_t>(params.validator.max_iter));
  validator.Set("neutrality_check", params.validator.neutrality_check);
  validator.Set("perf_ratio", params.validator.perf_ratio);
  validator.Set("perf_floor", params.validator.perf_floor);
  validator.Set("keep_new_trace_mutants", params.validator.keep_new_trace_mutants);
  if (params.validator.stress_seeds > 0) {
    // Written only when the stress axis is on: stress-free configs keep their historical
    // serialization (and thus their CampaignFingerprint), so old journals still resume.
    validator.Set("stress_seeds", static_cast<int64_t>(params.validator.stress_seeds));
  }
  if (params.validator.compile.mode != jaguar::CompileMode::kSync) {
    // Same rule for the compile axis: only non-sync campaigns carry it, and it joins the
    // fingerprint — a journal written in scheduled mode must not resume as a sync campaign.
    validator.Set("compile", jaguar::CompileConfigToJson(params.validator.compile));
  }
  Json jonm = Json::Object();
  jonm.Set("select_numerator", static_cast<int64_t>(params.validator.jonm.select_numerator));
  jonm.Set("select_denominator",
           static_cast<int64_t>(params.validator.jonm.select_denominator));
  Json mutators = Json::Array();
  for (MutatorKind kind : params.validator.jonm.mutators) {
    mutators.Append(static_cast<int64_t>(static_cast<int>(kind)));
  }
  jonm.Set("mutators", std::move(mutators));
  jonm.Set("prioritized_methods", StringsToJson(params.validator.jonm.prioritized_methods));
  Json synth = Json::Object();
  synth.Set("min_bound", params.validator.jonm.synth.min_bound);
  synth.Set("max_bound", params.validator.jonm.synth.max_bound);
  synth.Set("max_step", static_cast<int64_t>(params.validator.jonm.synth.max_step));
  synth.Set("stmts_per_hole", static_cast<int64_t>(params.validator.jonm.synth.stmts_per_hole));
  jonm.Set("synth", std::move(synth));
  validator.Set("jonm", std::move(jonm));
  j.Set("validator", std::move(validator));

  Json fuzz = Json::Object();
  fuzz.Set("min_globals", static_cast<int64_t>(params.fuzz.min_globals));
  fuzz.Set("max_globals", static_cast<int64_t>(params.fuzz.max_globals));
  fuzz.Set("min_functions", static_cast<int64_t>(params.fuzz.min_functions));
  fuzz.Set("max_functions", static_cast<int64_t>(params.fuzz.max_functions));
  fuzz.Set("max_params", static_cast<int64_t>(params.fuzz.max_params));
  fuzz.Set("max_block_stmts", static_cast<int64_t>(params.fuzz.max_block_stmts));
  fuzz.Set("max_stmt_depth", static_cast<int64_t>(params.fuzz.max_stmt_depth));
  fuzz.Set("max_expr_depth", static_cast<int64_t>(params.fuzz.max_expr_depth));
  fuzz.Set("max_loop_trip", static_cast<int64_t>(params.fuzz.max_loop_trip));
  fuzz.Set("max_switch_cases", static_cast<int64_t>(params.fuzz.max_switch_cases));
  fuzz.Set("interesting_literal_pct",
           static_cast<int64_t>(params.fuzz.interesting_literal_pct));
  j.Set("fuzz", std::move(fuzz));
  return j;
}

bool CampaignParamsFromJson(const Json& json, CampaignParams* out) {
  if (!json.is_object() || !json.Has("num_seeds")) {
    return false;
  }
  CampaignParams params;
  params.num_seeds = static_cast<int>(json.Get("num_seeds").AsInt());
  params.base_seed = json.Get("base_seed").AsUint();
  params.step_budget = json.Get("step_budget").AsUint();
  params.num_threads = static_cast<int>(json.Get("num_threads").AsInt());
  params.triage = json.Get("triage").AsBool();
  const std::string& isolation = json.Get("isolation").AsString();
  if (!isolation.empty()) {
    ParseIsolationMode(isolation, &params.isolation);
    const Json& sandbox = json.Get("sandbox");
    SandboxLimits defaults_limits;
    params.sandbox.exec_timeout_ms =
        static_cast<int>(sandbox.Get("exec_timeout_ms").AsInt(defaults_limits.exec_timeout_ms));
    params.sandbox.exec_rss_mb =
        static_cast<int>(sandbox.Get("exec_rss_mb").AsInt(defaults_limits.exec_rss_mb));
    params.sandbox.grace_ms =
        static_cast<int>(sandbox.Get("grace_ms").AsInt(defaults_limits.grace_ms));
    params.sandbox.max_retries =
        static_cast<int>(sandbox.Get("max_retries").AsInt(defaults_limits.max_retries));
  }
  if (json.Has("chaos")) {
    const Json& chaos = json.Get("chaos");
    params.chaos.rate_pct = static_cast<int>(chaos.Get("rate_pct").AsInt(0));
    params.chaos.seed = chaos.Get("seed").AsUint(0);
    params.chaos.dry_run = chaos.Get("dry_run").AsBool(false);
  }

  const Json& triage = json.Get("triage_params");
  params.triage_params.pairwise = triage.Get("pairwise").AsBool(true);
  params.triage_params.use_verifier = triage.Get("use_verifier").AsBool(true);
  params.triage_params.max_stage_runs = static_cast<int>(triage.Get("max_stage_runs").AsInt(160));

  const Json& validator = json.Get("validator");
  params.validator.max_iter = static_cast<int>(validator.Get("max_iter").AsInt(8));
  params.validator.neutrality_check = validator.Get("neutrality_check").AsBool(true);
  params.validator.perf_ratio = validator.Get("perf_ratio").AsUint(4);
  params.validator.perf_floor = validator.Get("perf_floor").AsUint(2'000'000);
  params.validator.keep_new_trace_mutants =
      validator.Get("keep_new_trace_mutants").AsBool(false);
  params.validator.stress_seeds = static_cast<int>(validator.Get("stress_seeds").AsInt(0));
  if (validator.Has("compile")) {
    params.validator.compile = jaguar::CompileConfigFromJson(validator.Get("compile"));
  }
  const Json& jonm = validator.Get("jonm");
  params.validator.jonm.select_numerator =
      static_cast<uint32_t>(jonm.Get("select_numerator").AsInt(1));
  params.validator.jonm.select_denominator =
      static_cast<uint32_t>(jonm.Get("select_denominator").AsInt(2));
  if (jonm.Has("mutators")) {
    params.validator.jonm.mutators.clear();
    for (const Json& kind : jonm.Get("mutators").items()) {
      params.validator.jonm.mutators.push_back(static_cast<MutatorKind>(kind.AsInt()));
    }
  }
  params.validator.jonm.prioritized_methods =
      StringsFromJson(jonm.Get("prioritized_methods"));
  const Json& synth = jonm.Get("synth");
  params.validator.jonm.synth.min_bound = synth.Get("min_bound").AsInt(5'000);
  params.validator.jonm.synth.max_bound = synth.Get("max_bound").AsInt(10'000);
  params.validator.jonm.synth.max_step = static_cast<int>(synth.Get("max_step").AsInt(10));
  params.validator.jonm.synth.stmts_per_hole =
      static_cast<int>(synth.Get("stmts_per_hole").AsInt(2));

  const Json& fuzz = json.Get("fuzz");
  FuzzConfig defaults;
  params.fuzz.min_globals = static_cast<int>(fuzz.Get("min_globals").AsInt(defaults.min_globals));
  params.fuzz.max_globals = static_cast<int>(fuzz.Get("max_globals").AsInt(defaults.max_globals));
  params.fuzz.min_functions =
      static_cast<int>(fuzz.Get("min_functions").AsInt(defaults.min_functions));
  params.fuzz.max_functions =
      static_cast<int>(fuzz.Get("max_functions").AsInt(defaults.max_functions));
  params.fuzz.max_params = static_cast<int>(fuzz.Get("max_params").AsInt(defaults.max_params));
  params.fuzz.max_block_stmts =
      static_cast<int>(fuzz.Get("max_block_stmts").AsInt(defaults.max_block_stmts));
  params.fuzz.max_stmt_depth =
      static_cast<int>(fuzz.Get("max_stmt_depth").AsInt(defaults.max_stmt_depth));
  params.fuzz.max_expr_depth =
      static_cast<int>(fuzz.Get("max_expr_depth").AsInt(defaults.max_expr_depth));
  params.fuzz.max_loop_trip =
      static_cast<int>(fuzz.Get("max_loop_trip").AsInt(defaults.max_loop_trip));
  params.fuzz.max_switch_cases =
      static_cast<int>(fuzz.Get("max_switch_cases").AsInt(defaults.max_switch_cases));
  params.fuzz.interesting_literal_pct = static_cast<int>(
      fuzz.Get("interesting_literal_pct").AsInt(defaults.interesting_literal_pct));
  *out = std::move(params);
  return true;
}

std::string CampaignFingerprint(const jaguar::VmConfig& vm, const CampaignParams& params) {
  // Isolation (and its limits) is an execution strategy like the thread count: sandboxed
  // shards serialize through the same codec and reduce identically, so a journal written
  // under --isolation sandbox may resume in-process and vice versa. Chaos stays in the
  // fingerprint (via CampaignParamsToJson above): it changes which seeds quarantine.
  CampaignParams durable = params;
  durable.isolation = IsolationMode::kInProcess;
  durable.sandbox = SandboxLimits{};
  Json identity = CampaignParamsToJson(durable);
  // Thread count changes wall time, never outcomes (the shard/reduce contract) — a journal
  // written on 16 workers may be resumed on 1.
  identity.Set("num_threads", Json());
  identity.Set("vm", vm.name);
  identity.Set("verify", static_cast<int64_t>(static_cast<int>(vm.verify_level)));
  if (vm.stress.enabled) {
    // A stress-enabled vendor explores a different compilation space; only when enabled, so
    // stress-free fingerprints match journals written before the stress axis existed.
    identity.Set("stress", jaguar::StressConfigToJson(vm.stress));
  }
  if (vm.compile.mode != jaguar::CompileMode::kSync) {
    // Likewise a vendor pinned to background/scheduled compilation (the campaign-level knob
    // in validator params is already part of CampaignParamsToJson above).
    identity.Set("vm_compile", jaguar::CompileConfigToJson(vm.compile));
  }
  return jaguar::Hex64(jaguar::Fnv1a64(identity.Dump()));
}

namespace {

// A SIGKILL can leave the journal's final line half-written (no trailing newline). Appending
// to that file would merge the next event into the partial line, corrupting *two* events
// instead of zero. Truncate back to the last newline before reopening for append.
void TruncatePartialTail(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) {
    return;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return;
  }
  // Scan backwards in one bounded read: a journal line is a JSON document, far under 1 MiB.
  const std::uintmax_t window = std::min<std::uintmax_t>(size, 1 << 20);
  in.seekg(static_cast<std::streamoff>(size - window));
  std::string tail(static_cast<size_t>(window), '\0');
  in.read(tail.data(), static_cast<std::streamsize>(window));
  in.close();
  if (!tail.empty() && tail.back() == '\n') {
    return;  // cleanly terminated
  }
  const size_t last_newline = tail.rfind('\n');
  const std::uintmax_t keep =
      last_newline == std::string::npos ? size - window : size - window + last_newline + 1;
  std::fprintf(stderr,
               "journal: truncating partial tail of %s (%llu -> %llu bytes)\n", path.c_str(),
               static_cast<unsigned long long>(size), static_cast<unsigned long long>(keep));
  std::filesystem::resize_file(path, keep, ec);  // best-effort; the reader skips bad lines
}

}  // namespace

CampaignJournal::CampaignJournal(const std::string& path) : path_(path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // fopen below reports any failure
  }
  std::error_code exists_ec;
  if (std::filesystem::exists(path, exists_ec)) {
    TruncatePartialTail(path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ != nullptr) {
    writer_ = std::thread([this] { WriterMain(); });
  }
}

CampaignJournal::~CampaignJournal() {
  if (file_ == nullptr) {
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  writer_.join();
  std::fclose(file_);
}

void CampaignJournal::Append(const Json& event) {
  if (file_ == nullptr) {
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(event.Dump());
    idle_ = false;
  }
  work_cv_.notify_one();
}

void CampaignJournal::Flush() {
  if (file_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return idle_ && queue_.empty(); });
}

void CampaignJournal::WriterMain() {
  while (true) {
    std::deque<std::string> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty() && stop_) {
        idle_ = true;
        drained_cv_.notify_all();
        return;
      }
      batch.swap(queue_);
    }
    for (const std::string& line : batch) {
      std::fputs(line.c_str(), file_);
      std::fputc('\n', file_);
    }
    // One flush per batch: every journaled event is OS-visible before the writer idles, so
    // a SIGKILL can only lose events that Append had not yet handed over.
    std::fflush(file_);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) {
        idle_ = true;
        drained_cv_.notify_all();
      }
    }
  }
}

JournalContents ReadJournal(const std::string& path) {
  JournalContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return contents;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    Json event;
    if (Json::Parse(line, &event) && event.is_object()) {
      contents.events.push_back(std::move(event));
    } else {
      ++contents.skipped_lines;  // truncated tail (or a damaged line): skip, never fail
    }
  }
  return contents;
}

}  // namespace artemis
