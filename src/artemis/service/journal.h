// CampaignJournal — the append-only JSONL event log that makes campaigns durable.
//
// Every long-running campaign writes its progress as one JSON document per line:
//
//   {"event":"campaign_started", "vm":..., "fingerprint":..., "params":{...}, "segment":N}
//   {"event":"seed_finished",    "ordinal":K, "elapsed":S, "shard":{...}}
//   {"event":"report_filed",     "report":{...}}            (service loop)
//   {"event":"corpus_admit",     "id":..., "parent":...}    (service loop)
//   {"event":"corpus_evict",     "id":...}                  (service loop)
//   {"event":"round_finished",   "round":R, "totals":{...}} (service loop)
//   {"event":"campaign_finished","digest":..., "elapsed":S}
//
// The "shard" payload of seed_finished serializes exactly the fields CampaignReducer
// consumes, so a journal segment can be *replayed*: ResumeCampaign (durable.h) folds the
// journaled shards together with freshly-computed ones and reproduces the uninterrupted
// campaign's stats bit-for-bit.
//
// Writing goes through a single writer thread: workers (the campaign pool runs many shards
// concurrently) enqueue serialized lines under a mutex, and one thread owns the FILE*,
// appending and flushing each line in order. A SIGKILL can therefore lose at most enqueued-
// but-unflushed events and truncate at most the final line of the file — both of which the
// reader tolerates (lost seeds simply re-run on resume; per-seed determinism makes the
// re-run identical).

#ifndef SRC_ARTEMIS_SERVICE_JOURNAL_H_
#define SRC_ARTEMIS_SERVICE_JOURNAL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/artemis/campaign/reducer.h"
#include "src/jaguar/support/json.h"

namespace artemis {

using jaguar::Json;

// ---------------------------------------------------------------------------------------
// Codecs. ToJson/FromJson pairs round-trip every field the reducer and SameOutcome compare.

Json TriageToJson(const TriageReport& report);
bool TriageFromJson(const Json& json, TriageReport* out);

Json BugReportToJson(const BugReport& report);
bool BugReportFromJson(const Json& json, BugReport* out);

// Serializes the reducer-visible projection of a shard (mutant programs and run outputs are
// deliberately dropped: replay feeds the reducer, not the VM).
Json ShardToJson(const SeedShardResult& shard);
bool ShardFromJson(const Json& json, SeedShardResult* out);

// The durable subset of CampaignParams (validator/fuzz/jonm/synth/triage knobs; guidance
// hooks are process-local lambdas and cannot be journaled — durable campaigns reject them).
Json CampaignParamsToJson(const CampaignParams& params);
bool CampaignParamsFromJson(const Json& json, CampaignParams* out);

// Identity of a campaign: vendor name + verify level + the durable parameter subset. A
// journal may only be resumed by a campaign with an equal fingerprint.
std::string CampaignFingerprint(const jaguar::VmConfig& vm, const CampaignParams& params);

// ---------------------------------------------------------------------------------------
// Writer.

class CampaignJournal {
 public:
  // Opens `path` for append (creating it if missing) and starts the writer thread.
  explicit CampaignJournal(const std::string& path);
  ~CampaignJournal();  // drains the queue, flushes, joins

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  bool ok() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  // Enqueues one event line. Thread-safe; returns after enqueue, not after the write (call
  // Flush() for a durability barrier).
  void Append(const Json& event);

  // Blocks until every previously-appended event is written and flushed to the OS.
  void Flush();

 private:
  void WriterMain();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::string> queue_;
  bool stop_ = false;
  bool idle_ = true;
  std::thread writer_;
};

// ---------------------------------------------------------------------------------------
// Reader.

struct JournalContents {
  std::vector<Json> events;   // every parseable line, in file order
  size_t skipped_lines = 0;   // unparseable lines (e.g. the SIGKILL-truncated tail)
};

// Reads a journal leniently: missing file → empty contents; lines that fail to parse are
// counted and skipped, never fatal.
JournalContents ReadJournal(const std::string& path);

}  // namespace artemis

#endif  // SRC_ARTEMIS_SERVICE_JOURNAL_H_
