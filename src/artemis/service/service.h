// ServiceLoop — the continuous, evolving-corpus campaign service.
//
// RunCampaign explores a fixed batch of generator seeds and exits; the service loop instead
// runs *rounds* of generate → mutate → validate over an evolving on-disk corpus
// (src/artemis/corpus), indefinitely if asked:
//
//   round r:
//     1. schedule  — draw `corpus_mutations_per_round` entries from the corpus (priority
//        scheduler: low compilation-space coverage first) plus `fresh_seeds_per_round`
//        brand-new generator seeds;
//     2. validate  — run coverage-guided Algorithm 1 on every scheduled program, in
//        parallel (each item carries its own SpaceCoverage, so workers share nothing);
//     3. evolve    — promote every non-discarded mutant that explored a new JIT-trace into
//        the corpus (content-addressed admission), credit its parent, evict down to
//        capacity;
//     4. observe   — fold outcomes into lifetime CampaignStats through one CampaignReducer
//        (report dedup spans the whole service lifetime), journal the round, and export a
//        metrics snapshot (throughput, corpus size, coverage fractions, distinct root
//        causes over time) to the BENCH_campaign.json trajectory.
//
// Durability: corpus entries and scheduler energies live on disk (sidecars), and the
// service journal records filed reports + cumulative counters at every round boundary, so
// `resume = true` continues a killed service from its last completed round with dedup
// state, accounting totals, and the evolved corpus intact. (The strict kill-anywhere
// SameOutcome contract lives in durable.h — one round here is the analogous checkpoint
// unit, and mid-round events are rolled back to the last round boundary on resume.)

#ifndef SRC_ARTEMIS_SERVICE_SERVICE_H_
#define SRC_ARTEMIS_SERVICE_SERVICE_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/artemis/campaign/campaign.h"
#include "src/jaguar/support/json.h"

namespace artemis {

using jaguar::Json;

struct ServiceParams {
  // Validator / fuzzer / triage / thread settings, reused from the batch campaign.
  // base_seed seeds both the fresh-seed stream and the per-round scheduling RNG.
  CampaignParams campaign;

  std::string corpus_dir;     // required
  std::string journal_path;   // "" → <corpus_dir>/service_journal.jsonl
  std::string metrics_path;   // "" → <corpus_dir>/BENCH_campaign.json
  std::string prom_path;      // "" → <corpus_dir>/metrics.prom (Prometheus text exposition)

  int rounds = 4;                      // rounds to run in this invocation (not lifetime)
  int fresh_seeds_per_round = 4;       // generator seeds entering each round
  int corpus_mutations_per_round = 8;  // corpus entries re-mutated each round
  size_t corpus_max_entries = 128;     // eviction bound

  // Corpus evolution switch. false = fixed-seed baseline: nothing is admitted and every
  // round draws fresh generator seeds only (the EXPERIMENTS.md comparison arm).
  bool admission = true;

  // Continue from an existing corpus + journal instead of requiring a fresh directory.
  bool resume = false;

  // Graceful-shutdown hook (artemis_service's SIGTERM/SIGINT handler sets it): checked at
  // round boundaries. Once true, the in-flight round finishes — its journal events, sidecar
  // writes, metrics.prom, and BENCH_campaign.json all land as usual — and RunService returns
  // normally instead of starting the next round, so `resume = true` continues exactly there.
  const std::atomic<bool>* cancel = nullptr;
};

// One point of the exported metrics trajectory.
struct ServiceSnapshot {
  int round = 0;
  double elapsed = 0.0;           // service-lifetime wall seconds (spans resumes)
  uint64_t vm_invocations = 0;    // lifetime total
  double invocations_per_second = 0.0;
  int corpus_size = 0;
  int corpus_admitted = 0;        // lifetime admissions
  int reported = 0;
  int duplicates = 0;
  int confirmed = 0;              // distinct injected root causes found so far
  int mutants_new_trace = 0;      // lifetime new-JIT-trace mutants
  double corpus_frac_top_tier = 0.0;  // mean admission-time top-tier coverage over entries

  Json ToJson() const;
};

struct ServiceStats {
  CampaignStats totals;       // lifetime counters + deduped reports (vm_name included)
  int rounds_completed = 0;   // lifetime rounds (spans resumes)
  int corpus_admitted = 0;
  int corpus_evicted = 0;
  uint64_t fresh_seeds_used = 0;
  std::vector<ServiceSnapshot> trajectory;  // lifetime, one point per round

  std::string ToString() const;
};

// Runs `params.rounds` rounds of the service against one vendor. Writes the corpus under
// params.corpus_dir, appends to the journal, and rewrites the metrics trajectory after
// every round. Throws std::runtime_error on an unusable corpus dir/journal.
ServiceStats RunService(const jaguar::VmConfig& vm_config, const ServiceParams& params);

}  // namespace artemis

#endif  // SRC_ARTEMIS_SERVICE_SERVICE_H_
