// The campaign-facing isolation policy: one seed shard per sandbox child, with the
// retry-once-then-quarantine state machine ISSUE/DESIGN.md §11 specify.
//
// RunSeedShardIsolated is the single dispatch point both campaign drivers (campaign.cc's
// RunCampaign and service/durable.cc's workers) route every shard through:
//   - executor == nullptr → the historical in-process path (plus chaos-dry-run marking);
//   - executor != nullptr → fork the shard into a child, serialize the result over the
//     journal codec (ShardToJson/ShardFromJson), and on crash/hang retry up to
//     limits().max_retries times before synthesizing a quarantined shard the reducer files
//     as a harness-crash/hang report.
//
// Chaos arming happens here (not in shard.cc): the set of firing seeds is the pure hash
// ChaosFires(params.chaos.seed, seed_id, rate_pct), so the sandbox arm (which injects and
// quarantines) and the dry-run arm (which only marks chaos_fired for clean-digest exclusion)
// select bit-identical seed sets.

#ifndef SRC_ARTEMIS_SANDBOX_ISOLATED_H_
#define SRC_ARTEMIS_SANDBOX_ISOLATED_H_

#include "src/artemis/campaign/campaign.h"
#include "src/artemis/campaign/shard.h"
#include "src/artemis/sandbox/sandbox.h"

namespace artemis {

// Runs the `ordinal`-th seed shard under the campaign's isolation policy. Deterministic in
// (vm_config, params, ordinal) — the executor only decides *where* the work runs, and the
// quarantine outcome of a chaos seed is itself deterministic (the injected fault always
// fires). Safe to call concurrently from campaign workers sharing one executor.
SeedShardResult RunSeedShardIsolated(const jaguar::VmConfig& vm_config,
                                     const CampaignParams& params, int ordinal,
                                     SandboxExecutor* executor);

}  // namespace artemis

#endif  // SRC_ARTEMIS_SANDBOX_ISOLATED_H_
