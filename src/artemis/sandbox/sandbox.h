// Process-isolation sandbox executor — the campaign's crash/hang containment layer.
//
// The paper's harness validates real JVMs, which segfault, OOM, and hang; Artemis survives
// them by running each execution in a subprocess under a wall-clock timeout. This module is
// that mechanism for our campaigns: SandboxExecutor forks one child per unit of work (one
// seed shard, or one service work item), applies rlimit CPU/RSS caps, and reads the child's
// serialized result back over a pipe. A parent-side watchdog thread tracks every in-flight
// child's wall-clock deadline and escalates SIGTERM → (grace) → SIGKILL, so a genuine
// SIGSEGV/SIGABRT/OOM/hang in the VM becomes a classified SandboxRun outcome — with the
// terminating signal, rusage, and the child's last flight-recorder breadcrumbs from a
// pre-mmapped shared page — instead of campaign death.
//
// Protocol (DESIGN.md §11): the child runs the work closure, writes one tag byte (0 = ok,
// 2 = caught exception) followed by the payload string to the pipe, and _exit()s. The parent
// blocks reading until EOF (the watchdog guarantees EOF by killing overdue children), then
// reaps with wait4 and classifies from the exit status. Payloads are the same canonical JSON
// the journal uses (ShardToJson), so a sandboxed campaign reduces bit-identically to an
// in-process one.
//
// Fork discipline: the parent is multi-threaded (campaign workers), so the child must treat
// the address space as crashed-lock territory. Work closures run with VmConfig::observer
// stripped and never touch the journal, metrics registry, or corpus; glibc's atfork handlers
// make malloc safe, which is all the validator needs. Children die with their parent
// (PR_SET_PDEATHSIG), so no campaign outcome can leak orphan processes.

#ifndef SRC_ARTEMIS_SANDBOX_SANDBOX_H_
#define SRC_ARTEMIS_SANDBOX_SANDBOX_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace jaguar::observe {
struct Observer;
class Counter;
}  // namespace jaguar::observe

namespace artemis {

// Where a campaign executes its per-seed work. kInProcess is the historical mode (fast, but
// one harness defect kills the campaign); kSandbox forks one child per seed.
enum class IsolationMode : uint8_t { kInProcess, kSandbox };

const char* IsolationModeName(IsolationMode mode);
bool ParseIsolationMode(const std::string& name, IsolationMode* out);

// Campaign-level chaos injection knobs (vm/chaos.h holds the per-run fault switch). At
// `rate_pct` percent of seeds — chosen by the pure hash ChaosFires(seed, seed_id, rate_pct),
// so the set is independent of isolation mode and thread count — the campaign arms a real
// fault in the child. `dry_run` selects the same seeds but injects nothing: the fault-free
// reference arm, which excludes the identical seed set from the clean digest.
struct ChaosParams {
  int rate_pct = 0;
  uint64_t seed = 0;
  bool dry_run = false;
};

// Resource caps and watchdog policy for sandboxed children.
struct SandboxLimits {
  int exec_timeout_ms = 10'000;  // wall-clock watchdog deadline (<= 0 disables the watchdog)
  int exec_rss_mb = 0;           // RLIMIT_AS cap in MiB (0 = uncapped)
  int grace_ms = 200;            // SIGTERM → SIGKILL escalation window
  int max_retries = 1;           // attempts after the first failure, before quarantine
};

// One reaped child, classified.
struct SandboxRun {
  enum class Status : uint8_t {
    kOk,          // exited 0 with a complete payload
    kCrash,       // died of a signal (SIGSEGV, SIGABRT, ...)
    kHang,        // watchdog deadline or RLIMIT_CPU expiry killed it
    kChildError,  // the work closure threw; `error` carries the child-reported message
    kSpawnError,  // fork failed even after backoff; `error` carries errno text
  };
  Status status = Status::kOk;
  int signal = 0;             // terminating signal (kCrash / kHang)
  int exit_code = 0;          // exit status when the child exited normally
  bool timed_out = false;     // the watchdog fired for this child
  long max_rss_kb = 0;        // wait4 rusage: peak resident set
  double cpu_seconds = 0.0;   // wait4 rusage: user + system time
  std::string payload;        // the child's serialized result (kOk)
  std::string breadcrumb;     // last flight-recorder markers, oldest>...>newest
  std::string error;          // detail for kChildError / kSpawnError
};

const char* SandboxStatusName(SandboxRun::Status status);

// Maps a signal number to its stable name ("SIGSEGV", ..., "sig<N>") — used in quarantine
// provenance, so it must never depend on locale or strsignal().
const char* SignalName(int signal);

// Forks and supervises children. Thread-safe: campaign workers call Run concurrently; one
// shared watchdog thread supervises every in-flight child. When an observer is attached, the
// executor keeps the artemis_sandbox_{spawns,kills,timeouts,retries,quarantined} counters
// live and emits a kSandboxKill trace event for every watchdog intervention.
class SandboxExecutor {
 public:
  explicit SandboxExecutor(const SandboxLimits& limits,
                           jaguar::observe::Observer* observer = nullptr);
  ~SandboxExecutor();

  SandboxExecutor(const SandboxExecutor&) = delete;
  SandboxExecutor& operator=(const SandboxExecutor&) = delete;

  // Runs `work` in a forked child and blocks until it is reaped. The closure's return value
  // comes back as `payload`. Transient fork failures retry with bounded exponential backoff
  // before reporting kSpawnError.
  SandboxRun Run(const std::function<std::string()>& work);

  // Policy-layer bookkeeping (retry-once-then-quarantine lives in isolated.cc; the executor
  // owns the counters so metrics land in one place).
  void NoteRetry();
  void NoteQuarantine();

  const SandboxLimits& limits() const { return limits_; }
  uint64_t spawns() const { return spawns_.load(std::memory_order_relaxed); }
  uint64_t kills() const { return kills_.load(std::memory_order_relaxed); }
  uint64_t timeouts() const { return timeouts_.load(std::memory_order_relaxed); }
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t quarantined() const { return quarantined_.load(std::memory_order_relaxed); }

 private:
  struct Watch {
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point kill_deadline;
    bool term_sent = false;
    bool kill_sent = false;
    bool timed_out = false;
  };

  void WatchdogMain();
  void Register(pid_t pid);
  // Removes the child from the watch table and reports whether the watchdog fired on it.
  bool Deregister(pid_t pid);
  void EmitKill(const char* reason, int signal);

  SandboxLimits limits_;
  jaguar::observe::Observer* observer_ = nullptr;
  jaguar::observe::Counter* spawns_counter_ = nullptr;
  jaguar::observe::Counter* kills_counter_ = nullptr;
  jaguar::observe::Counter* timeouts_counter_ = nullptr;
  jaguar::observe::Counter* retries_counter_ = nullptr;
  jaguar::observe::Counter* quarantined_counter_ = nullptr;

  std::atomic<uint64_t> spawns_{0};
  std::atomic<uint64_t> kills_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> quarantined_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<pid_t, Watch> inflight_;
  bool stop_ = false;
  std::thread watchdog_;
};

// Child-side breadcrumb marker for the flight-recorder page: cheap, bounded, and a no-op
// when the caller is not a sandbox child. Work closures mark coarse phases ("validate",
// "triage", ...) so a post-mortem names where the child died.
void SandboxPhase(const char* phase);

}  // namespace artemis

#endif  // SRC_ARTEMIS_SANDBOX_SANDBOX_H_
