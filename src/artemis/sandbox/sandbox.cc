#include "src/artemis/sandbox/sandbox.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cstdio>
#include <new>

#include "src/jaguar/observe/metrics.h"
#include "src/jaguar/observe/tracer.h"

namespace artemis {
namespace {

// Flight-recorder page, mmapped MAP_SHARED before the fork so the parent can read the
// child's last phase markers post-mortem. One page; a small ring of fixed-width slots. The
// child is single-threaded when it writes, and the parent only reads after reaping, so the
// atomic counter is for cross-process visibility, not for locking.
constexpr int kFlightSlots = 8;
constexpr int kFlightSlotLen = 88;

struct FlightPage {
  std::atomic<uint32_t> count;
  char slots[kFlightSlots][kFlightSlotLen];
};
static_assert(sizeof(FlightPage) <= 4096, "flight recorder must fit one page");

// Set in the child (between fork and _exit) so SandboxPhase has somewhere to write; null in
// the parent and in non-sandbox processes, making SandboxPhase a no-op there.
FlightPage* g_flight_page = nullptr;

std::string FormatBreadcrumb(const FlightPage* page) {
  if (page == nullptr) {
    return "";
  }
  const uint32_t count = page->count.load(std::memory_order_acquire);
  if (count == 0) {
    return "";
  }
  const uint32_t begin = count > kFlightSlots ? count - kFlightSlots : 0;
  std::string out;
  for (uint32_t i = begin; i < count; ++i) {
    char slot[kFlightSlotLen];
    memcpy(slot, page->slots[i % kFlightSlots], kFlightSlotLen);
    slot[kFlightSlotLen - 1] = '\0';
    if (!out.empty()) {
      out += ">";
    }
    out += slot;
  }
  return out;
}

void ApplyChildLimits(const SandboxLimits& limits) {
  // Never dump core: chaos children die of SIGSEGV/SIGABRT by design, and a core per fault
  // would fill the disk.
  struct rlimit no_core = {0, 0};
  setrlimit(RLIMIT_CORE, &no_core);
  if (limits.exec_timeout_ms > 0) {
    // CPU backstop behind the wall-clock watchdog: a spinning child that somehow outlives
    // the watchdog (parent death mid-campaign) still dies of SIGXCPU.
    const rlim_t cpu_s = static_cast<rlim_t>(limits.exec_timeout_ms / 1000 + 2);
    struct rlimit cpu = {cpu_s, cpu_s + 2};
    setrlimit(RLIMIT_CPU, &cpu);
  }
  if (limits.exec_rss_mb > 0) {
    // RLIMIT_RSS is a no-op on Linux; cap the address space instead, which turns allocation
    // bombs into bad_alloc → abort inside the child.
    const rlim_t bytes = static_cast<rlim_t>(limits.exec_rss_mb) << 20;
    struct rlimit as = {bytes, bytes};
    setrlimit(RLIMIT_AS, &as);
  }
}

// Writes the whole buffer, retrying on EINTR / short writes. Child-side only.
bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

[[noreturn]] void ChildMain(int write_fd, FlightPage* page, const SandboxLimits& limits,
                            const std::function<std::string()>& work) {
#if defined(__linux__)
  // Die with the parent: even a SIGKILLed campaign leaves no orphan children behind.
  prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  g_flight_page = page;
  ApplyChildLimits(limits);
  SandboxPhase("start");
  char tag = 0;
  std::string payload;
  try {
    payload = work();
  } catch (const std::exception& e) {
    tag = 2;
    payload = e.what();
  } catch (...) {
    tag = 2;
    payload = "unknown exception";
  }
  SandboxPhase("write");
  WriteAll(write_fd, &tag, 1);
  WriteAll(write_fd, payload.data(), payload.size());
  // _exit, not exit: the parent's atexit handlers and stdio buffers are not ours to run or
  // flush (this address space was forked from a multi-threaded process).
  _exit(tag == 0 ? 0 : 2);
}

}  // namespace

const char* IsolationModeName(IsolationMode mode) {
  switch (mode) {
    case IsolationMode::kInProcess:
      return "in_process";
    case IsolationMode::kSandbox:
      return "sandbox";
  }
  return "in_process";
}

bool ParseIsolationMode(const std::string& name, IsolationMode* out) {
  if (name == "in_process" || name == "in-process") {
    *out = IsolationMode::kInProcess;
  } else if (name == "sandbox") {
    *out = IsolationMode::kSandbox;
  } else {
    return false;
  }
  return true;
}

const char* SandboxStatusName(SandboxRun::Status status) {
  switch (status) {
    case SandboxRun::Status::kOk:
      return "ok";
    case SandboxRun::Status::kCrash:
      return "crash";
    case SandboxRun::Status::kHang:
      return "hang";
    case SandboxRun::Status::kChildError:
      return "child-error";
    case SandboxRun::Status::kSpawnError:
      return "spawn-error";
  }
  return "unknown";
}

const char* SignalName(int signal) {
  switch (signal) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGILL:
      return "SIGILL";
    case SIGFPE:
      return "SIGFPE";
    case SIGKILL:
      return "SIGKILL";
    case SIGTERM:
      return "SIGTERM";
    case SIGXCPU:
      return "SIGXCPU";
    default: {
      // Uncommon signals render as sig<N>; thread-local storage keeps the return stable.
      thread_local char buf[16];
      snprintf(buf, sizeof(buf), "sig%d", signal);
      return buf;
    }
  }
}

void SandboxPhase(const char* phase) {
  FlightPage* page = g_flight_page;
  if (page == nullptr || phase == nullptr) {
    return;
  }
  const uint32_t index = page->count.load(std::memory_order_relaxed);
  char* slot = page->slots[index % kFlightSlots];
  strncpy(slot, phase, kFlightSlotLen - 1);
  slot[kFlightSlotLen - 1] = '\0';
  page->count.store(index + 1, std::memory_order_release);
}

SandboxExecutor::SandboxExecutor(const SandboxLimits& limits,
                                 jaguar::observe::Observer* observer)
    : limits_(limits), observer_(observer) {
  if (observer_ != nullptr && observer_->metrics != nullptr) {
    jaguar::observe::MetricsRegistry* m = observer_->metrics;
    spawns_counter_ = m->GetCounter("artemis_sandbox_spawns_total", "Sandbox children forked");
    kills_counter_ =
        m->GetCounter("artemis_sandbox_kills_total", "Sandbox children SIGKILLed by watchdog");
    timeouts_counter_ =
        m->GetCounter("artemis_sandbox_timeouts_total", "Sandbox watchdog deadline expiries");
    retries_counter_ =
        m->GetCounter("artemis_sandbox_retries_total", "Sandbox tasks retried after a failure");
    quarantined_counter_ =
        m->GetCounter("artemis_sandbox_quarantined_total", "Sandbox tasks quarantined");
  }
  watchdog_ = std::thread([this] { WatchdogMain(); });
}

SandboxExecutor::~SandboxExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  watchdog_.join();
}

void SandboxExecutor::NoteRetry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (retries_counter_ != nullptr) {
    retries_counter_->Inc();
  }
}

void SandboxExecutor::NoteQuarantine() {
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  if (quarantined_counter_ != nullptr) {
    quarantined_counter_->Inc();
  }
}

void SandboxExecutor::EmitKill(const char* reason, int signal) {
  if (observer_ == nullptr || observer_->hub == nullptr) {
    return;
  }
  jaguar::observe::TraceEvent event;
  event.kind = jaguar::observe::EventKind::kSandboxKill;
  event.name = reason;  // static storage, per the TraceEvent contract
  event.value = static_cast<uint64_t>(signal);
  if (observer_->clock != nullptr) {
    event.ts_us = observer_->clock->NowMicros();
  }
  observer_->hub->LocalRing()->Push(event);
}

void SandboxExecutor::Register(pid_t pid) {
  if (limits_.exec_timeout_ms <= 0) {
    return;  // watchdog disabled
  }
  Watch watch;
  watch.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(limits_.exec_timeout_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_[pid] = watch;
  }
  cv_.notify_all();
}

bool SandboxExecutor::Deregister(pid_t pid) {
  if (limits_.exec_timeout_ms <= 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(pid);
  const bool timed_out = it != inflight_.end() && it->second.timed_out;
  if (it != inflight_.end()) {
    inflight_.erase(it);
  }
  return timed_out;
}

void SandboxExecutor::WatchdogMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const auto now = std::chrono::steady_clock::now();
    auto wake = now + std::chrono::hours(24);
    for (auto& [pid, watch] : inflight_) {
      if (!watch.term_sent && now >= watch.deadline) {
        watch.term_sent = true;
        watch.timed_out = true;
        watch.kill_deadline = now + std::chrono::milliseconds(std::max(limits_.grace_ms, 1));
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        if (timeouts_counter_ != nullptr) {
          timeouts_counter_->Inc();
        }
        kill(pid, SIGTERM);
        EmitKill("watchdog-timeout", SIGTERM);
      } else if (watch.term_sent && !watch.kill_sent && now >= watch.kill_deadline) {
        // The grace window elapsed and the worker still has not reaped it: escalate.
        watch.kill_sent = true;
        kills_.fetch_add(1, std::memory_order_relaxed);
        if (kills_counter_ != nullptr) {
          kills_counter_->Inc();
        }
        kill(pid, SIGKILL);
        EmitKill("watchdog-escalation", SIGKILL);
      }
      if (!watch.term_sent) {
        wake = std::min(wake, watch.deadline);
      } else if (!watch.kill_sent) {
        wake = std::min(wake, watch.kill_deadline);
      }
    }
    if (inflight_.empty()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, wake);
    }
  }
}

SandboxRun SandboxExecutor::Run(const std::function<std::string()>& work) {
  SandboxRun run;

  // The flight page outlives the child and is read post-mortem by the parent.
  void* page_mem = mmap(nullptr, sizeof(FlightPage), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  FlightPage* page = page_mem == MAP_FAILED ? nullptr : new (page_mem) FlightPage();

  int fds[2];
  if (pipe2(fds, O_CLOEXEC) != 0) {
    run.status = SandboxRun::Status::kSpawnError;
    run.error = std::string("pipe2: ") + strerror(errno);
    if (page != nullptr) {
      munmap(page, sizeof(FlightPage));
    }
    return run;
  }

  // Transient fork failures (EAGAIN under pid pressure) respawn with bounded exponential
  // backoff before giving up.
  pid_t pid = -1;
  for (int attempt = 0; attempt < 5; ++attempt) {
    pid = fork();
    if (pid >= 0 || (errno != EAGAIN && errno != ENOMEM)) {
      break;
    }
    usleep(10'000u << attempt);
  }
  if (pid < 0) {
    run.status = SandboxRun::Status::kSpawnError;
    run.error = std::string("fork: ") + strerror(errno);
    close(fds[0]);
    close(fds[1]);
    if (page != nullptr) {
      munmap(page, sizeof(FlightPage));
    }
    return run;
  }
  if (pid == 0) {
    close(fds[0]);
    ChildMain(fds[1], page, limits_, work);  // never returns
  }

  // Parent.
  spawns_.fetch_add(1, std::memory_order_relaxed);
  if (spawns_counter_ != nullptr) {
    spawns_counter_->Inc();
  }
  close(fds[1]);
  Register(pid);

  // Blocking read until EOF: the child's _exit (or its death by signal — including the
  // watchdog's) closes the last write end.
  std::string wire;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n > 0) {
      wire.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;
  }
  close(fds[0]);

  // Deregister BEFORE reaping: once wait4 returns, the pid is free for reuse, and a stale
  // watch entry could make the watchdog kill an unrelated new child. EOF already implies the
  // child is past the point where the watchdog matters (its write end is closed), and a
  // deadline that fired set timed_out before the child died.
  run.timed_out = Deregister(pid);

  int status = 0;
  struct rusage usage;
  memset(&usage, 0, sizeof(usage));
  pid_t reaped;
  do {
    reaped = wait4(pid, &status, 0, &usage);
  } while (reaped < 0 && errno == EINTR);

  run.max_rss_kb = usage.ru_maxrss;
  run.cpu_seconds = static_cast<double>(usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) +
                    static_cast<double>(usage.ru_utime.tv_usec + usage.ru_stime.tv_usec) / 1e6;
  run.breadcrumb = FormatBreadcrumb(page);
  if (page != nullptr) {
    munmap(page, sizeof(FlightPage));
  }

  if (reaped < 0) {
    run.status = SandboxRun::Status::kSpawnError;
    run.error = std::string("wait4: ") + strerror(errno);
    return run;
  }
  if (WIFSIGNALED(status)) {
    run.signal = WTERMSIG(status);
    // A watchdog kill or a CPU-rlimit expiry is a hang; anything else is a genuine crash.
    run.status = run.timed_out || run.signal == SIGXCPU ? SandboxRun::Status::kHang
                                                        : SandboxRun::Status::kCrash;
    return run;
  }
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (run.exit_code == 0 && !wire.empty() && wire[0] == 0) {
    run.status = SandboxRun::Status::kOk;
    run.payload = wire.substr(1);
    return run;
  }
  if (run.exit_code == 2 && !wire.empty() && wire[0] == 2) {
    run.status = SandboxRun::Status::kChildError;
    run.error = wire.substr(1);
    return run;
  }
  run.status = SandboxRun::Status::kChildError;
  run.error = "protocol error: exit " + std::to_string(run.exit_code) + ", " +
              std::to_string(wire.size()) + " payload bytes";
  return run;
}

}  // namespace artemis
