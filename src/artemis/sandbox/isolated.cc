#include "src/artemis/sandbox/isolated.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "src/artemis/service/journal.h"
#include "src/jaguar/jit/concurrent/install_schedule.h"
#include "src/jaguar/vm/chaos.h"

namespace artemis {
namespace {

// Replay provenance for shards that never ran (quarantined before any result came back):
// the same per-seed compile derivation shard.cc performs, so harness reports carry the
// schedule the crashed child was executing under.
jaguar::CompileConfig CompileProvenanceFor(const CampaignParams& params, uint64_t seed_id) {
  jaguar::CompileConfig compile = params.validator.compile;
  if (compile.mode == jaguar::CompileMode::kScheduled) {
    compile.schedule_seed = jaguar::DeriveScheduleSeed(params.base_seed, seed_id);
  }
  return compile;
}

}  // namespace

SeedShardResult RunSeedShardIsolated(const jaguar::VmConfig& vm_config,
                                     const CampaignParams& params, int ordinal,
                                     SandboxExecutor* executor) {
  const uint64_t seed_id = params.base_seed + static_cast<uint64_t>(ordinal);
  const bool chaos_fires =
      params.chaos.rate_pct > 0 &&
      jaguar::ChaosFires(params.chaos.seed, seed_id, params.chaos.rate_pct);
  const uint64_t derived_chaos_seed =
      chaos_fires ? jaguar::DeriveChaosSeed(params.chaos.seed, seed_id) : 0;

  if (executor == nullptr) {
    // In-process (the historical path). RunCampaign guards that chaos injection never gets
    // here without dry_run, so a firing seed only gets its clean-digest-exclusion mark.
    SeedShardResult shard = RunSeedShard(vm_config, params, ordinal);
    if (chaos_fires) {
      shard.chaos_fired = true;
      shard.chaos_seed = derived_chaos_seed;
    }
    return shard;
  }

  // Child config: the observer's registries live in the parent and must not be touched from
  // a forked copy (their mutexes may be mid-flight in other parent threads); chaos arms only
  // in the child, so the fault can never take the campaign down.
  jaguar::VmConfig child_config = vm_config;
  child_config.observer = nullptr;
  if (chaos_fires && !params.chaos.dry_run) {
    child_config = child_config.WithChaosSeed(derived_chaos_seed);
  }

  const auto work = [&child_config, &params, ordinal]() {
    SandboxPhase("shard");
    SeedShardResult shard = RunSeedShard(child_config, params, ordinal);
    SandboxPhase("serialize");
    return ShardToJson(shard).Dump();
  };

  const int attempts = 1 + std::max(0, executor->limits().max_retries);
  SandboxRun run;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      executor->NoteRetry();
      // Bounded exponential backoff before respawning: a transient parent-side condition
      // (fork pressure, fd exhaustion) gets room to clear; a deterministic fault does not
      // stop being deterministic, so the retry budget stays small.
      std::this_thread::sleep_for(std::chrono::milliseconds(20 << (attempt - 1)));
    }
    run = executor->Run(work);
    if (run.status == SandboxRun::Status::kOk) {
      SeedShardResult shard;
      jaguar::Json payload;
      if (jaguar::Json::Parse(run.payload, &payload) && ShardFromJson(payload, &shard)) {
        if (chaos_fires) {
          shard.chaos_fired = true;
          shard.chaos_seed = derived_chaos_seed;
        }
        return shard;
      }
      // A complete exit-0 payload that fails to parse is a protocol defect — treat it like
      // a crash (retry, then quarantine) rather than poisoning the reduce.
      run.status = SandboxRun::Status::kChildError;
      run.error = "payload parse failure";
    }
  }

  // Every attempt died: synthesize the quarantined shard the reducer turns into a
  // harness-crash/hang report. This shard rides the journal, so kill/resume replays the
  // quarantine instead of re-running (and re-crashing on) the seed.
  executor->NoteQuarantine();
  SeedShardResult shard;
  shard.seed_id = seed_id;
  shard.compile = CompileProvenanceFor(params, seed_id);
  shard.quarantined = true;
  shard.quarantine_hang = run.status == SandboxRun::Status::kHang;
  shard.quarantine_signal = run.signal;
  shard.quarantine_retries = attempts - 1;
  shard.quarantine_breadcrumb = run.breadcrumb;
  if (chaos_fires) {
    shard.chaos_fired = true;
    shard.chaos_seed = derived_chaos_seed;
  }
  return shard;
}

}  // namespace artemis
