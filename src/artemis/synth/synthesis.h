// Loop synthesis — the paper's Algorithm 2 (SynLoop / SynExpr / SynStmts).
//
// Synthesis is programming-by-sketch: a loop skeleton with MIN/MAX/STEP hyper-parameters and
// `<expr>` / `<stmts>` holes (paper Figure 3) is instantiated at a program point ρ using the
// variables visible there. Following the paper:
//   - SynExpr fills an expression hole with a random literal of the hole's type or a reused
//     visible variable (Rule 1 / Rule 2); reused variables are recorded in V′;
//   - SynStmts fills a statement hole by instantiating skeletons from the corpus
//     (skeleton_corpus.h) and fusing SynExpr results into their holes;
//   - the final loop is made neutral: every variable in V′ is backed up before and restored
//     after the loop, output is muted around it, and all traps it may raise are caught and
//     discarded (§3.4 "Other considerations").
//
// Synthesis works textually (holes are substituted into Jaguar source text, then parsed with
// the real parser), which mirrors how Artemis instantiates Spoon templates, and guarantees by
// construction that the output is syntactically valid.

#ifndef SRC_ARTEMIS_SYNTH_SYNTHESIS_H_
#define SRC_ARTEMIS_SYNTH_SYNTHESIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/jaguar/lang/ast.h"
#include "src/jaguar/lang/scope.h"
#include "src/jaguar/support/rng.h"

namespace artemis {

struct SynthParams {
  // MIN / MAX / STEP of the loop skeletons (paper §4.1: 5,000/10,000 for HotSpot/OpenJ9-like
  // thresholds, 20,000/50,000 for ART-like ones). STEP is drawn from 1..max_step with a bias
  // toward 1 so pre-invocation counts actually cross thresholds often enough.
  int64_t min_bound = 5'000;
  int64_t max_bound = 10'000;
  int max_step = 10;

  // Statement skeletons instantiated per <stmts> hole. 0 disables statement holes entirely —
  // the §3.4 ablation ("<stmts> and statement skeletons are not a must").
  int stmts_per_hole = 2;
};

// One synthesis session, scoped to a program point. Not reusable across points.
class LoopSynthesizer {
 public:
  // `visible`: locals/params in scope at ρ. `globals`: the program's globals ("fields").
  // `name_counter`: shared fresh-name counter for the whole mutant (names are "jnN").
  LoopSynthesizer(jaguar::Rng& rng, const SynthParams& params,
                  std::vector<jaguar::VarInfo> visible, std::vector<jaguar::VarInfo> globals,
                  int* name_counter);

  // SynExpr (Algorithm 2): an expression of type `t` as source text.
  std::string SynExprText(jaguar::Type t);

  // SynStmts: `params.stmts_per_hole` instantiated skeletons as source text.
  std::string SynStmtsText();

  std::string FreshName();

  // Builds the complete, neutrality-wrapped loop block:
  //   { backups; mute(true); try { for (jnI = min(MIN,e); jnI < max(MAX,e'); jnI += STEP)
  //     { <stmts>; MIDDLE; <stmts>; } } catch { } mute(false); restores; }
  // `middle_text` is the mutator-specific placeholder content (empty for LI).
  // `extra_reused` adds variables synthesized elsewhere (MI's prologue) to V′ so the wrapper
  // backs them up too — the shared-V′ rule of Algorithm 2 line 4.
  // `middle_first` places MIDDLE at the top of the body instead of between the two <stmts>
  // holes — SW needs the wrapped seed statement to execute in a clean (pre-synthesis) state
  // on the first iteration.
  jaguar::StmtPtr BuildWrappedLoop(const std::string& middle_text,
                                   const std::map<std::string, jaguar::Type>& extra_reused = {},
                                   bool middle_first = false);

  // V′: variables reused by SynExpr in this session (name → type).
  const std::map<std::string, jaguar::Type>& reused() const { return reused_; }

  // Exposed for MI's prologue and for tests: instantiates one random corpus skeleton; returns
  // false when no visible variable satisfies an @X hole.
  bool InstantiateSkeleton(std::string* out);

 private:
  std::string LiteralText(jaguar::Type t);
  const jaguar::VarInfo* PickVar(jaguar::Type t);

  jaguar::Rng& rng_;
  const SynthParams& params_;
  std::vector<jaguar::VarInfo> visible_;
  std::vector<jaguar::VarInfo> globals_;
  int* name_counter_;
  std::map<std::string, jaguar::Type> reused_;
};

}  // namespace artemis

#endif  // SRC_ARTEMIS_SYNTH_SYNTHESIS_H_
