#include "src/artemis/synth/skeleton_corpus.h"

namespace artemis {

const std::vector<std::string>& StatementSkeletons() {
  static const auto* corpus = new std::vector<std::string>{
      // --- Plain arithmetic chains (fodder for folding / GVN / DCE) -------------------------
      "int @v0 = @I * 3 + @I;",
      "int @v0 = (@I ^ @I) + (@I & 255);",
      "long @v0 = (long) @I * (long) @I;",
      "int @v0 = @I; int @v1 = @v0 + @I; @v0 = @v1 - @v0;",
      "int @v0 = @I + @I; int @v1 = @I + @I; int @v2 = @v0 ^ @v1;",
      "long @v0 = @L + @L; long @v1 = @v0 * 3L; @v0 = @v1 % 1000L;",

      // --- Redundant subexpressions (GVN pressure; many commons per compile) -----------------
      "int @v0 = (@XI * 31 + 7) ^ (@XI * 31 + 7); @XI += @v0;",
      "int @v0 = @XI + 1; int @v1 = @XI + 1; int @v2 = @XI + 1; @XI = @v0 + @v1 + @v2;",
      "long @v0 = (@XL >> 3) + (@XL >> 3); @XL = @v0 + (@XL >> 3);",

      // --- Global read/write shapes (GVN load commoning, store sinking / GCM) ----------------
      "int @v0 = @XI; @XI = @v0 + @I; int @v1 = @XI; @XI = @v1 + @v0;",
      "@XI = @XI + @I;",
      "@XI = @I; for (int @v0 = 0; @v0 < @K; @v0 += 1) { @XI += 2; }",
      "@XL = @XL + (long) @I;",

      // --- Power-of-two division / multiplication (strength reduction) -----------------------
      "int @v0 = (@I - 150) / @P2; @XI += @v0;",
      "int @v0 = @XI / @P2 + @XI / 4; @XI = @v0;",
      "int @v0 = @I * @P2; @XI ^= @v0;",
      "long @v0 = (@L - 1000L) / 8L; @XL += @v0;",

      // --- Shift folding (constant shift amounts, including >= width) ------------------------
      "int @v0 = @I + (1 << @SH); @XI += @v0;",
      "int @v0 = (7 << @SH) ^ @I;",
      "long @v0 = (1L << @SH) + @L;",

      // --- Counted array loops (range-check elimination; <= variant is the off-by-one bait) --
      "int[] @v0 = new int[@K + 4]; for (int @v1 = 0; @v1 < @v0.length; @v1 += 1) { "
      "@v0[@v1] = @I; } @XI += @v0[0];",
      "int[] @v0 = new int[@K + 2]; for (int @v1 = 0; @v1 <= @v0.length; @v1 += 1) { "
      "@v0[@v1] = @I; } @XI += @v0[1];",
      "int[] @v0 = new int[] {@I, @I, @I, @I}; int @v1 = 0; "
      "for (int @v2 = 0; @v2 < @v0.length; @v2 += 1) { @v1 += @v0[@v2]; } @XI ^= @v1;",
      "long[] @v0 = new long[@K + 1]; for (int @v1 = 0; @v1 < @v0.length; @v1 += 1) { "
      "@v0[@v1] = @L; }",

      // --- Nested loops (LICM depth triggers, GCM inner-loop bait, loop peeling) --------------
      "for (int @v0 = 0; @v0 < @K; @v0 += 1) { for (int @v1 = 0; @v1 < 3; @v1 += 1) { "
      "@XI += @v0 + @v1; } }",
      "@XI = @I; for (int @v0 = 0; @v0 < 3; @v0 += 1) { @XI += 2; } @XI -= 1;",
      "int @v0 = 0; for (int @v1 = 0; @v1 < @K; @v1 += 1) { @v0 += @XI * 2; } @XI = @v0;",
      "for (int @v0 = 0; @v0 < @K; @v0 += 1) { for (int @v1 = 0; @v1 < @K; @v1 += 1) { "
      "for (int @v2 = 0; @v2 < 2; @v2 += 1) { @XI ^= @v0 + @v1 + @v2; } } }",

      // --- Conditionally-executed global stores (LICM hoist-past-guard bait) ------------------
      "for (int @v0 = 0; @v0 < @K; @v0 += 1) { if (@B) { @XI = @I; } }",
      "if (@B) { @XI = @XI + 1; } else { @XI = @XI - 1; }",

      // --- Branches biased one way (speculation fodder) ---------------------------------------
      "if (@I > 2000000) { @XI = 0 - @XI; }",
      "boolean @v0 = @B; if (@v0 && @v0) { @XI += 1; }",
      "int @v0 = @I; if (@v0 == @v0) { @XI += 2; } else { @XI -= 2; }",

      // --- Switches (IR-builder stress, jump tables) -------------------------------------------
      "switch ((@I & 7)) { case 0: @XI += 1; break; case 1: @XI += 2; case 2: @XI += 3; "
      "break; case 3: @XI -= 1; break; default: @XI ^= 1; }",
      "switch ((@I & 15)) { case 0: @XI += 1; break; case 1: @XI += 2; break; "
      "case 2: @XI += 3; break; case 3: @XI += 4; break; case 4: @XI += 5; break; "
      "case 5: @XI += 6; break; case 6: @XI += 7; break; case 7: @XI += 8; break; "
      "case 8: @XI += 9; break; default: @XI -= 1; }",

      // --- Trapping operations inside try/catch (deopt-at-trap, handler dispatch) -------------
      "try { int @v0 = @I / (@I & 3); @XI += @v0; } catch { @XI -= 1; }",
      "int[] @v0 = new int[3]; try { @v0[@I & 7] = 1; } catch { @XI += 1; } @XI += @v0[0];",
      "try { long @v0 = @L % (@L & 1L); @XL += @v0; } catch { @XL ^= 1L; }",

      // --- Two-argument helper-call shapes (inlining fodder when a helper exists) -------------
      "int @v0 = @I - @I * 2; @XI += @v0;",
      "int @v0 = @I; int @v1 = @I; @XI += (@v0 - @v1 * 2);",

      // --- Long/int mixing (width-conversion coverage) ----------------------------------------
      "long @v0 = (long) @I << 20; int @v1 = (int) (@v0 >> 4); @XI += @v1;",
      "int @v0 = (int) (@L / 3L); @XI ^= @v0;",
      "@XL = (long) @XI * 2654435761L;",

      // --- Boolean flag dances (uncommon-trap prologues, like MI's control flag) ---------------
      "boolean @v0 = @B; boolean @v1 = !@v0; if (@v1 | @v0) { @XI += 1; }",
      "@XB = !@XB; if (@XB) { @XI += 1; } @XB = !@XB;",

      // --- Deep recursion fodder is intentionally absent (Artemis does not synthesize calls to
      //     arbitrary methods; MI handles calls with its control-flag protocol). ----------------

      // --- Print under mute (exercises kSetMute interleaving with output) ----------------------
      "print(@I);",
      "print(@B); print(@L);",

      // --- Long-dominated arithmetic (width-conversion and 64-bit operator coverage) -----------
      "long @v0 = @L; long @v1 = (@v0 >>> @SH) | (@v0 << 7); @XL ^= @v1;",
      "long @v0 = (@L * 2654435761L) % 4294967291L; @XL += @v0;",
      "long @v0 = @L & (-1L >>> 16); long @v1 = @v0 * @v0; @XL ^= (@v1 >> 3);",

      // --- Boolean algebra chains (short-circuit lowering, branch fodder) ----------------------
      "boolean @v0 = (@I < @I) || (@L >= @L); boolean @v1 = @v0 && (@B || !@v0); "
      "if (@v1) { @XI += 1; } else { @XI -= 1; }",
      "boolean @v0 = !(@B && @B); if (@v0 ^ @B) { @XI ^= 3; }",

      // --- While-loops with explicit counters (non-`for` loop shapes) --------------------------
      "int @v0 = @K + 2; while (@v0 > 0) { @XI += @v0; @v0 -= 1; }",
      "int @v0 = 0; while (@v0 < @K * 2) { if ((@v0 & 1) == 0) { @XI += 1; } @v0 += 1; }",

      // --- Early-exit loops (break/continue control flow through the optimizer) ----------------
      "for (int @v0 = 0; @v0 < @K + 6; @v0 += 1) { if (@v0 == @K) { break; } @XI += @v0; }",
      "for (int @v0 = 0; @v0 < @K + 4; @v0 += 1) { if ((@v0 & 1) == 1) { continue; } "
      "@XI ^= @v0; }",

      // --- Ternary pyramids (select-style data flow) --------------------------------------------
      "int @v0 = (@B ? @I : @I); int @v1 = ((@v0 > 0) ? (@v0 / 3) : (0 - @v0)); @XI += @v1;",
      "long @v0 = (@B ? @L : (@B ? @L : @L)); @XL ^= @v0;",

      // --- Nested try/catch (handler-table and deopt-dispatch stress) ---------------------------
      "try { try { int @v0 = @I / (@I & 1); @XI += @v0; } catch { @XI += 10; "
      "int @v1 = @I % (@I & 1); @XI += @v1; } } catch { @XI -= 10; }",
      "int[] @v0 = new int[2]; try { @v0[@K] = 1; @XI += @v0[@K]; } catch { @XI ^= 5; }",

      // --- Dense redundancy under branches (dominator-scoped GVN) -------------------------------
      "int @v0 = @XI * 17 + 5; if (@B) { @XI += (@XI * 17 + 5) - @v0; } else { "
      "@XI -= (@XI * 17 + 5) - @v0; }",

      // --- Array shuffles on fresh arrays (alias-free memory traffic) ---------------------------
      "int[] @v0 = new int[] {@I, @I, @I, @I, @I, @I}; int @v1 = @v0[0]; "
      "for (int @v2 = 1; @v2 < @v0.length; @v2 += 1) { @v0[@v2 - 1] = @v0[@v2]; } "
      "@v0[@v0.length - 1] = @v1; @XI += @v0[2];",
      "long[] @v0 = new long[@K + 1]; for (int @v1 = 0; @v1 < @v0.length; @v1 += 1) { "
      "@v0[@v1] = (long) (@v1 * @v1); } @XL += @v0[@K];",

      // --- Two-phase accumulators (sub with dying rhs: two-address-form codegen fodder) ---------
      "int @v0 = @XI + @I; int @v1 = @I + 3; int @v2 = @v0 - @v1; @XI = @v2;",
      "int @v0 = @I; int @v1 = @I; int @v2 = @I; int @v3 = @I; int @v4 = @I; "
      "int @v5 = ((@v0 + @v1) + (@v2 + @v3)) - @v4; @XI ^= @v5;",

      // --- Register-pressure blocks (spill-path and interval-extension fodder) ------------------
      "int @v0 = @I; int @v1 = @I + 1; int @v2 = @I + 2; int @v3 = @I + 3; int @v4 = @I + 4; "
      "for (int @v5 = 0; @v5 < @K + 2; @v5 += 1) { "
      "@XI += ((@v0 ^ @v1) + (@v2 - @v3)) * (@v4 | 1) + (@v5 * 3) - (@v0 & @v2) + "
      "(@v1 % 7) + (@v3 << 1) - (@v4 >>> 2); }",

      // --- Switch driven by loop induction (jump tables inside hot loops) -----------------------
      "for (int @v0 = 0; @v0 < @K + 3; @v0 += 1) { switch (@v0 & 3) { "
      "case 0: @XI += 1; break; case 1: @XI -= 1; break; case 2: @XI ^= 2; break; "
      "default: @XI <<= 1; } }",

      // --- Mixed compute blocks (general optimizer food) ---------------------------------------
      "int @v0 = @I; int @v1 = @I; for (int @v2 = 0; @v2 < @K; @v2 += 1) { "
      "@v0 = @v0 + @v1; @v1 = @v0 - @v1; } @XI ^= @v0;",
      "int @v0 = 0; int @v1 = 1; for (int @v2 = 0; @v2 < @K + 3; @v2 += 1) { "
      "int @v3 = @v0 + @v1; @v0 = @v1; @v1 = @v3; } @XI += @v1;",
      "long @v0 = 1L; for (int @v1 = 0; @v1 < @K; @v1 += 1) { @v0 *= 3L; @v0 %= 1000003L; } "
      "@XL ^= @v0;",
      "int @v0 = @I; @v0 = (@v0 << 13) ^ @v0; @v0 = (@v0 >>> 17) ^ @v0; @XI += @v0;",
  };
  return *corpus;
}

}  // namespace artemis
