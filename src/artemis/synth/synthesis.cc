#include "src/artemis/synth/synthesis.h"

#include <utility>

#include "src/artemis/synth/skeleton_corpus.h"
#include "src/jaguar/lang/parser.h"
#include "src/jaguar/support/check.h"
#include "src/jaguar/support/text.h"

namespace artemis {
namespace {

using jaguar::Type;
using jaguar::TypeKind;
using jaguar::VarInfo;

}  // namespace

LoopSynthesizer::LoopSynthesizer(jaguar::Rng& rng, const SynthParams& params,
                                 std::vector<VarInfo> visible, std::vector<VarInfo> globals,
                                 int* name_counter)
    : rng_(rng),
      params_(params),
      visible_(std::move(visible)),
      globals_(std::move(globals)),
      name_counter_(name_counter) {}

std::string LoopSynthesizer::FreshName() { return "jn" + std::to_string((*name_counter_)++); }

std::string LoopSynthesizer::LiteralText(Type t) {
  if (t.IsBool()) {
    return rng_.FlipCoin() ? "true" : "false";
  }
  if (t.IsLong()) {
    if (rng_.Chance(1, 4)) {
      static const int64_t kInteresting[] = {0, 1, -1, 63, 64, 4294967296, -4294967296};
      const int64_t v = kInteresting[rng_.PickIndex(7)];
      return v < 0 ? "(" + std::to_string(v) + "L)" : std::to_string(v) + "L";
    }
    const int64_t v = rng_.NextInRange(-256, 256);
    return v < 0 ? "(" + std::to_string(v) + "L)" : std::to_string(v) + "L";
  }
  if (rng_.Chance(1, 4)) {
    static const int64_t kInteresting[] = {0,  1,  -1, 2,   7,    8,     16,  31,
                                           32, 33, 64, 255, 4096, -4096, -255};
    const int64_t v = kInteresting[rng_.PickIndex(15)];
    return v < 0 ? "(" + std::to_string(v) + ")" : std::to_string(v);
  }
  const int64_t v = rng_.NextInRange(-256, 256);
  return v < 0 ? "(" + std::to_string(v) + ")" : std::to_string(v);
}

const VarInfo* LoopSynthesizer::PickVar(Type t) {
  std::vector<const VarInfo*> candidates;
  for (const auto& v : visible_) {
    if (v.type == t) {
      candidates.push_back(&v);
    }
  }
  for (const auto& g : globals_) {
    if (g.type == t) {
      candidates.push_back(&g);
    }
  }
  if (candidates.empty()) {
    return nullptr;
  }
  return candidates[rng_.PickIndex(candidates.size())];
}

std::string LoopSynthesizer::SynExprText(Type t) {
  JAG_CHECK(t.IsPrimitive());
  // Rule 2 (reuse a visible variable) with probability 1/2 when one exists; Rule 1 otherwise.
  if (rng_.FlipCoin()) {
    const VarInfo* var = PickVar(t);
    if (var != nullptr) {
      reused_[var->name] = var->type;  // V′ ← {v} ∪ V′
      return var->name;
    }
  }
  return LiteralText(t);
}

bool LoopSynthesizer::InstantiateSkeleton(std::string* out) {
  const auto& corpus = StatementSkeletons();
  std::string text = corpus[rng_.PickIndex(corpus.size())];

  // Fresh names first (plain textual markers; longest first so @v10-style never bites).
  for (int i = 9; i >= 0; --i) {
    const std::string marker = "@v" + std::to_string(i);
    if (text.find(marker) != std::string::npos) {
      text = jaguar::ReplaceAll(text, marker, FreshName());
    }
  }

  // Existing-variable holes; instantiation fails if the scope has no matching variable.
  struct XHole {
    const char* marker;
    Type type;
  };
  static const XHole kXHoles[] = {
      {"@XI", Type::Int()},
      {"@XL", Type::Long()},
      {"@XB", Type::Bool()},
  };
  for (const auto& hole : kXHoles) {
    while (text.find(hole.marker) != std::string::npos) {
      const VarInfo* var = PickVar(hole.type);
      if (var == nullptr) {
        return false;
      }
      reused_[var->name] = var->type;  // written by the skeleton → must be restored
      // Replace one occurrence at a time so different occurrences *may* pick the same
      // variable (they do here, by design: read-modify-write shapes need that).
      const size_t at = text.find(hole.marker);
      text = text.substr(0, at) + var->name + text.substr(at + 3);
    }
  }

  // Literal holes.
  while (text.find("@K") != std::string::npos) {
    const size_t at = text.find("@K");
    text = text.substr(0, at) + std::to_string(rng_.NextInt(1, 8)) + text.substr(at + 2);
  }
  while (text.find("@P2") != std::string::npos) {
    static const int kP2[] = {2, 4, 8, 16, 32};
    const size_t at = text.find("@P2");
    text = text.substr(0, at) + std::to_string(kP2[rng_.PickIndex(5)]) + text.substr(at + 3);
  }
  while (text.find("@SH") != std::string::npos) {
    static const int kShifts[] = {1, 3, 5, 31, 32, 33, 34, 63};
    const size_t at = text.find("@SH");
    text = text.substr(0, at) + std::to_string(kShifts[rng_.PickIndex(8)]) + text.substr(at + 3);
  }

  // Expression holes (checked longest-marker-first: @I/@L/@B are single letters).
  while (text.find("@L") != std::string::npos) {
    const size_t at = text.find("@L");
    text = text.substr(0, at) + SynExprText(Type::Long()) + text.substr(at + 2);
  }
  while (text.find("@B") != std::string::npos) {
    const size_t at = text.find("@B");
    text = text.substr(0, at) + SynExprText(Type::Bool()) + text.substr(at + 2);
  }
  while (text.find("@I") != std::string::npos) {
    const size_t at = text.find("@I");
    text = text.substr(0, at) + SynExprText(Type::Int()) + text.substr(at + 2);
  }

  *out = text;
  return true;
}

std::string LoopSynthesizer::SynStmtsText() {
  std::string out;
  for (int i = 0; i < params_.stmts_per_hole; ++i) {
    std::string stmt;
    for (int tries = 0; tries < 6; ++tries) {
      if (InstantiateSkeleton(&stmt)) {
        break;
      }
      stmt.clear();
    }
    if (stmt.empty()) {
      // Degenerate scope (no variables at all): fall back to a self-contained statement.
      stmt = "int " + FreshName() + " = " + LiteralText(Type::Int()) + ";";
    }
    out += stmt;
    out += "\n";
  }
  return out;
}

jaguar::StmtPtr LoopSynthesizer::BuildWrappedLoop(
    const std::string& middle_text, const std::map<std::string, Type>& extra_reused,
    bool middle_first) {
  // Synthesize the loop pieces first — V′ must be complete before backups are emitted.
  const std::string iv = FreshName();
  const std::string bound_lo = SynExprText(Type::Int());
  const std::string bound_hi = SynExprText(Type::Int());
  // STEP biased toward 1 so thresholds are actually crossed often (see SynthParams).
  const int step = rng_.Chance(1, 2) ? 1 : rng_.NextInt(1, params_.max_step);
  const std::string pre = SynStmtsText();
  const std::string post = SynStmtsText();

  std::map<std::string, Type> all_reused = reused_;
  for (const auto& [name, type] : extra_reused) {
    all_reused[name] = type;
  }

  const std::string min_s = std::to_string(params_.min_bound);
  const std::string max_s = std::to_string(params_.max_bound);

  std::string text = "{\n";
  // Backups (Algorithm 2 lines 9–10): L ← Backup v; L; Restore v.
  std::vector<std::pair<std::string, std::string>> restores;  // (var, backup)
  for (const auto& [name, type] : all_reused) {
    const std::string bk = FreshName();
    text += jaguar::TypeName(type) + " " + bk + " = " + name + ";\n";
    restores.emplace_back(name, bk);
  }
  text += "mute(true);\n";
  // min(MIN, e) / max(MAX, e) of the Figure 3 skeletons, hoisted into locals: a reused
  // variable in the bound could be mutated by the loop body (it is restored only after the
  // loop), and a bound that keeps growing would never terminate. Java's `for` re-evaluates
  // the condition each iteration — Artemis-for-JVM leaned on its 2-minute timeout there; we
  // guarantee termination instead and keep the same first-entry semantics.
  const std::string lo_var = FreshName();
  const std::string hi_var = FreshName();
  text += "int " + lo_var + " = ((" + bound_lo + ") < (" + min_s + ") ? (" + bound_lo +
          ") : (" + min_s + "));\n";
  text += "int " + hi_var + " = ((" + bound_hi + ") > (" + max_s + ") ? (" + bound_hi +
          ") : (" + max_s + "));\n";
  text += "try {\n";
  text += "for (int " + iv + " = " + lo_var + "; " + iv + " < " + hi_var + "; " + iv +
          " += " + std::to_string(step) + ") {\n";
  std::string middle = middle_text;
  if (!middle.empty() && middle.back() != '\n') {
    middle += "\n";
  }
  if (middle_first) {
    text += middle + pre + post;
  } else {
    text += pre + middle + post;
  }
  text += "}\n";
  text += "} catch {\n}\n";
  text += "mute(false);\n";
  for (const auto& [name, bk] : restores) {
    text += name + " = " + bk + ";\n";
  }
  text += "}\n";

  std::vector<jaguar::StmtPtr> parsed = jaguar::ParseStatements(text);
  JAG_CHECK_MSG(parsed.size() == 1, "wrapped loop must parse to a single block");
  return std::move(parsed[0]);
}

}  // namespace artemis
