// The statement-skeleton corpus.
//
// The paper extracts 7,823 statement skeletons from the HotSpot/OpenJ9/ART test suites —
// "sequences of consecutive Java statements with <expr> holes only" (§3.4) — so that the
// synthesized loop bodies are diverse in control- and data-flow and can "trigger varied
// optimization passes in JIT compilers". We cannot ship those suites; instead this corpus is
// hand-written with the same intent: each entry is a Jaguar statement sequence with typed
// holes, and the set deliberately covers the optimization patterns our simulated JITs
// implement (redundant subexpressions for GVN, power-of-two divisions for strength reduction,
// counted array loops for range-check elimination, nested loops for LICM/GCM, switches,
// try/catch, shift-by-constant folding, and so on).
//
// Hole markers (substituted textually by the synthesizer before parsing):
//   @I / @L / @B   expression hole of type int / long / boolean (SynExpr fills it)
//   @XI / @XL / @XB  name of an existing writable variable of that type (recorded in V′ and
//                    backed up/restored by the neutrality wrapper); instantiation of the
//                    skeleton fails if none is visible
//   @v0 .. @v4     fresh local variable names (consistent within one instantiation)
//   @K             small positive trip-count literal (1..8)
//   @P2            power-of-two literal (2, 4, 8, 16, 32)
//   @SH            shift-amount literal, sometimes >= the operand width (31..34, 63)

#ifndef SRC_ARTEMIS_SYNTH_SKELETON_CORPUS_H_
#define SRC_ARTEMIS_SYNTH_SKELETON_CORPUS_H_

#include <string>
#include <vector>

namespace artemis {

// All statement skeletons. Stable order (index into this vector identifies a skeleton).
const std::vector<std::string>& StatementSkeletons();

}  // namespace artemis

#endif  // SRC_ARTEMIS_SYNTH_SKELETON_CORPUS_H_
