#include "src/artemis/validate/validator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/support/check.h"

namespace artemis {
namespace {

using jaguar::BcProgram;
using jaguar::BugId;
using jaguar::RunOutcome;
using jaguar::RunStatus;
using jaguar::VmConfig;

std::vector<BugId> NewlyFired(const RunOutcome& mutant, const RunOutcome& seed) {
  std::set<BugId> seed_fired(seed.fired_bugs.begin(), seed.fired_bugs.end());
  std::vector<BugId> out;
  for (BugId bug : mutant.fired_bugs) {
    if (seed_fired.count(bug) == 0) {
      out.push_back(bug);
    }
  }
  return out;
}

}  // namespace

const char* DiscrepancyName(DiscrepancyKind kind) {
  switch (kind) {
    case DiscrepancyKind::kNone: return "none";
    case DiscrepancyKind::kMisCompilation: return "mis-compilation";
    case DiscrepancyKind::kCrash: return "crash";
    case DiscrepancyKind::kPerformance: return "performance";
    case DiscrepancyKind::kHarnessCrash: return "harness-crash";
    case DiscrepancyKind::kHarnessHang: return "harness-hang";
  }
  return "?";
}

int ValidationReport::Discrepancies() const {
  int n = 0;
  for (const auto& verdict : mutants) {
    n += verdict.kind != DiscrepancyKind::kNone ? 1 : 0;
  }
  return n;
}

int ValidationReport::StressDiscrepancies() const {
  int n = 0;
  for (const auto& point : stress_points) {
    n += point.kind != DiscrepancyKind::kNone ? 1 : 0;
  }
  return n;
}

ValidationReport Validate(const jaguar::Program& seed, const VmConfig& vm_config,
                          const ValidatorParams& params, jaguar::Rng& rng) {
  ValidationReport report;

  // Interpreter references are untouched by the compile axis (no JIT → no compile queue);
  // every JIT run of this validation executes under the configured compile mode.
  const VmConfig jit_config = params.compile.mode == jaguar::CompileMode::kSync
                                  ? vm_config
                                  : vm_config.WithCompile(params.compile);

  const BcProgram seed_bc = jaguar::CompileProgram(seed);
  report.seed_interp = jaguar::RunProgram(seed_bc, jaguar::InterpreterOnlyConfig());
  report.seed_jit = jaguar::RunProgram(seed_bc, jit_config);  // R ← LVM(P), default JIT-trace

  if (report.seed_interp.status == RunStatus::kTimeout ||
      report.seed_jit.status == RunStatus::kTimeout) {
    report.seed_usable = false;
    report.seed_unusable_reason = "seed exceeded the step budget";
    return report;
  }
  // A seed that already crashes/diverges under its default JIT-trace is a bug the traditional
  // fully-default run would also witness; Artemis still mutates it (the paper reports several
  // duplicates of user-visible bugs), but we record the fact for the comparative study.
  report.seed_self_discrepancy = !report.seed_jit.SameObservable(report.seed_interp);

  // Stress-mode sweep (the second exploration axis): the same seed, the same VM, K perturbed
  // compilation spaces. Verdict rules mirror the mutant loop's, with R (the seed's default
  // JIT-trace run) as the metamorphic reference.
  for (int k = 0; k < params.stress_seeds; ++k) {
    StressVerdict point;
    point.stress_seed = jaguar::DeriveStressSeed(params.stress_seed_base, 0, k);
    point.outcome = jaguar::RunProgram(seed_bc, jit_config.WithStressSeed(point.stress_seed));
    const RunOutcome& stressed = point.outcome;
    point.suspected_bugs = NewlyFired(stressed, report.seed_jit);

    if (stressed.status == RunStatus::kTimeout) {
      if (report.seed_interp.status == RunStatus::kOk &&
          report.seed_interp.steps * 4 < stressed.steps) {
        point.kind = DiscrepancyKind::kPerformance;
        point.detail = "stressed JIT execution exhausted the budget; interpretation finished in " +
                       std::to_string(report.seed_interp.steps) + " steps";
      } else {
        point.discarded = true;
        point.detail = "stress point exceeded the step budget";
      }
    } else if (!stressed.SameObservable(report.seed_jit)) {
      if (stressed.status == RunStatus::kVmCrash ||
          report.seed_jit.status == RunStatus::kVmCrash) {
        point.kind = DiscrepancyKind::kCrash;
        point.detail = std::string(jaguar::ComponentName(stressed.crash_component)) + " (" +
                       stressed.crash_kind + "): " + stressed.crash_message;
      } else {
        point.kind = DiscrepancyKind::kMisCompilation;
        point.detail = "output diverged from the seed's default JIT-trace run under stress";
      }
    } else if (params.perf_ratio > 0 && report.seed_interp.status == RunStatus::kOk &&
               stressed.steps > params.perf_ratio * report.seed_interp.steps &&
               stressed.steps > report.seed_interp.steps + params.perf_floor &&
               !(report.seed_jit.steps > params.perf_ratio * report.seed_interp.steps &&
                 report.seed_jit.steps > report.seed_interp.steps + params.perf_floor)) {
      // Pathological only under stress — the default trace was within budget, so the stressed
      // compilation choices themselves caused the slowdown.
      point.kind = DiscrepancyKind::kPerformance;
      point.detail = "stressed JIT used " + std::to_string(stressed.steps) + " steps vs " +
                     std::to_string(report.seed_interp.steps) + " interpreted";
    }
    report.stress_points.push_back(std::move(point));
  }

  JonmParams jonm = params.jonm;
  // Pushes the verdict and notifies the guidance hook immediately — coverage-guided
  // exploration needs each mutant's trace before tuning the next iteration.
  auto finish = [&](MutantVerdict verdict) {
    report.mutants.push_back(std::move(verdict));
    if (params.on_mutant) {
      params.on_mutant(report.mutants.back());
    }
  };
  for (int i = 0; i < params.max_iter; ++i) {
    if (params.tune_iteration) {
      params.tune_iteration(i, jonm);
    }
    MutantVerdict verdict;
    MutationResult mutation = JoNM(seed, jonm, rng);
    verdict.mutations = mutation.applied;

    const BcProgram mutant_bc = jaguar::CompileProgram(mutation.mutant);

    RunOutcome mutant_interp;
    if (params.neutrality_check || params.perf_ratio > 0) {
      mutant_interp = jaguar::RunProgram(mutant_bc, jaguar::InterpreterOnlyConfig());
      if (mutant_interp.status == RunStatus::kTimeout) {
        verdict.discarded = true;
        verdict.detail = "mutant exceeded the step budget under interpretation";
        finish(std::move(verdict));
        continue;
      }
      if (params.neutrality_check &&
          !mutant_interp.SameObservable(report.seed_interp)) {
        verdict.discarded = true;
        verdict.non_neutral = true;
        verdict.detail = "mutation was not semantics-preserving (tool defect, not a VM bug)";
        finish(std::move(verdict));
        continue;
      }
    }

    verdict.outcome = jaguar::RunProgram(mutant_bc, jit_config);  // R′ ← LVM(P′)
    const RunOutcome& mutant_jit = verdict.outcome;
    verdict.explored_new_trace = !mutant_jit.trace.SameShape(report.seed_jit.trace);
    verdict.suspected_bugs = NewlyFired(mutant_jit, report.seed_jit);

    if (mutant_jit.status == RunStatus::kTimeout) {
      // The paper discards runs over its 2-minute cutoff — unless the interpreter finished
      // comfortably, in which case the JIT itself is pathologically slow (our analogue of the
      // "process finally killed by the operating system" performance bug, §4.2).
      if (mutant_interp.status == RunStatus::kOk &&
          mutant_interp.steps * 4 < mutant_jit.steps) {
        verdict.kind = DiscrepancyKind::kPerformance;
        verdict.detail = "JIT execution exhausted the budget; interpretation finished in " +
                         std::to_string(mutant_interp.steps) + " steps";
        verdict.mutant_program =
            std::make_shared<const jaguar::Program>(std::move(mutation.mutant));
      } else {
        verdict.discarded = true;
        verdict.detail = "mutant exceeded the step budget";
      }
      finish(std::move(verdict));
      continue;
    }

    if (!mutant_jit.SameObservable(report.seed_jit)) {  // R′ ≠ R → JIT-compiler bug
      // Note the comparison is against the *seed's* run on the same VM (Algorithm 1), not an
      // interpreter: a crash that the seed already exhibits identically is one behaviour, not
      // a mutant-revealed discrepancy.
      if (mutant_jit.status == RunStatus::kVmCrash ||
          report.seed_jit.status == RunStatus::kVmCrash) {
        verdict.kind = DiscrepancyKind::kCrash;
        verdict.detail = std::string(jaguar::ComponentName(mutant_jit.crash_component)) +
                         " (" + mutant_jit.crash_kind + "): " + mutant_jit.crash_message;
      } else {
        verdict.kind = DiscrepancyKind::kMisCompilation;
        verdict.detail = "output diverged from the seed's default JIT-trace run";
      }
      verdict.mutant_program =
          std::make_shared<const jaguar::Program>(std::move(mutation.mutant));
      finish(std::move(verdict));
      continue;
    }

    // Performance pathology: same answer, wildly more work under the JIT than interpreted.
    if (params.perf_ratio > 0 && mutant_interp.status == RunStatus::kOk &&
        mutant_jit.steps > params.perf_ratio * mutant_interp.steps &&
        mutant_jit.steps > mutant_interp.steps + params.perf_floor) {
      verdict.kind = DiscrepancyKind::kPerformance;
      verdict.detail = "JIT used " + std::to_string(mutant_jit.steps) + " steps vs " +
                       std::to_string(mutant_interp.steps) + " interpreted";
      verdict.mutant_program =
          std::make_shared<const jaguar::Program>(std::move(mutation.mutant));
    }
    if (params.keep_new_trace_mutants && verdict.explored_new_trace &&
        verdict.mutant_program == nullptr) {
      // Corpus-evolution mode: a neutral mutant that explored a new JIT-trace is admission
      // material even though it revealed no discrepancy.
      verdict.mutant_program =
          std::make_shared<const jaguar::Program>(std::move(mutation.mutant));
    }
    finish(std::move(verdict));
  }
  return report;
}

}  // namespace artemis
