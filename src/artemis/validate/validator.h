// The Artemis validation loop — the paper's Algorithm 1.
//
//   Validate(LVM, P):
//     R ← LVM(P)                      // seed with its default JIT-trace
//     for i ← 1..MAX_ITER:
//       P′ ← JoNM(P)
//       R′ ← LVM(P′)                  // mutant with its default JIT-trace
//       if R′ ≠ R: ReportJITCompilerBug(P′)
//
// The oracle is metamorphic: both runs execute on the *same* VM with the JIT enabled; no
// reference implementation is consulted. Discrepancies are classified into the paper's three
// bug types (§4.2): mis-compilation (different output), crash (simulated VM crash), and
// performance issue (pathologically more work under the JIT than under interpretation).
//
// Engineering guards beyond the paper (both use the interpreter, which Artemis-for-JVM could
// not invoke cheaply): a *neutrality pre-check* runs each mutant interpreter-only and discards
// it if the mutation itself changed semantics (a tool bug, never a VM bug), and runs that
// exhaust the step budget are discarded like the paper's 2-minute timeout discards.

#ifndef SRC_ARTEMIS_VALIDATE_VALIDATOR_H_
#define SRC_ARTEMIS_VALIDATE_VALIDATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/artemis/mutate/jonm.h"
#include "src/jaguar/vm/config.h"
#include "src/jaguar/vm/engine.h"

namespace artemis {

// kHarnessCrash/kHarnessHang are not validator verdicts: they classify a *harness* death —
// the whole child process segfaulted, aborted, OOMed, or hung under the campaign sandbox
// (src/artemis/sandbox) — and are filed by the reducer when a shard is quarantined.
enum class DiscrepancyKind : uint8_t {
  kNone,
  kMisCompilation,
  kCrash,
  kPerformance,
  kHarnessCrash,
  kHarnessHang,
};

const char* DiscrepancyName(DiscrepancyKind kind);

struct MutantVerdict {
  DiscrepancyKind kind = DiscrepancyKind::kNone;
  bool discarded = false;        // timeout, or the neutrality pre-check failed
  bool non_neutral = false;      // subset of discarded: the mutation changed semantics
  std::string detail;
  std::vector<MutationRecord> mutations;
  jaguar::RunOutcome outcome;    // the mutant's run under the tested VM
  // Ground-truth root causes: defects that fired in the mutant's run but not the seed's.
  std::vector<jaguar::BugId> suspected_bugs;
  bool explored_new_trace = false;  // mutant's JIT-trace summary differs from the seed's
  // The offending program, retained only for discrepancies (kind != kNone) so downstream
  // consumers (triage, reduction) can re-run it without re-deriving the mutation chain.
  std::shared_ptr<const jaguar::Program> mutant_program;
};

// One stress point: the *unmutated* seed re-run under a derived stress seed (jit/stress).
// The oracle is again metamorphic — every stress perturbation is a legal compilation choice,
// so a healthy JIT must reproduce the seed's default JIT-trace observables exactly. Each
// (seed, vendor, stress seed) triple is one point of compilation space the default trace and
// JoNM's mutants never visit.
struct StressVerdict {
  uint64_t stress_seed = 0;
  DiscrepancyKind kind = DiscrepancyKind::kNone;
  bool discarded = false;        // timed out under stress without performance evidence
  std::string detail;
  jaguar::RunOutcome outcome;    // the seed's run under the stressed VM
  // Ground-truth root causes: defects that fired under stress but not in the default run.
  std::vector<jaguar::BugId> suspected_bugs;
};

struct ValidationReport {
  bool seed_usable = true;       // seed compiled and ran (no timeout) under the VM
  std::string seed_unusable_reason;
  // True when the *unmutated* seed already diverges between interpreter and JIT — a bug the
  // traditional approaches would also see; recorded for the Table 4 comparison.
  bool seed_self_discrepancy = false;
  jaguar::RunOutcome seed_interp;
  jaguar::RunOutcome seed_jit;
  std::vector<MutantVerdict> mutants;
  std::vector<StressVerdict> stress_points;  // one per sampled stress seed

  int Discrepancies() const;
  int StressDiscrepancies() const;
  bool FoundAny() const { return Discrepancies() + StressDiscrepancies() > 0; }
};

struct ValidatorParams {
  JonmParams jonm;
  int max_iter = 8;              // the paper's MAX_ITER (§4.1: eight mutants per seed)
  bool neutrality_check = true;

  // Optional hooks for guided exploration (src/artemis/coverage): `tune_iteration` may adjust
  // the JoNM parameters before each mutant is derived; `on_mutant` observes every verdict
  // (including discarded ones) right after its runs complete.
  std::function<void(int iteration, JonmParams&)> tune_iteration;
  std::function<void(const MutantVerdict&)> on_mutant;
  // Performance-issue detection: JIT-on steps must exceed both `perf_ratio` × interpreter
  // steps and interpreter steps + `perf_floor` to count (filters ordinary compile overhead).
  uint64_t perf_ratio = 4;
  uint64_t perf_floor = 2'000'000;

  // Retain `mutant_program` for every non-discarded mutant whose JIT-trace differed from the
  // seed's, not just for discrepancies. The evolving-corpus service (src/artemis/corpus)
  // promotes exactly these mutants into the seed pool; memory stays bounded by max_iter.
  bool keep_new_trace_mutants = false;

  // Stress-mode exploration: re-run the unmutated seed under this many derived stress seeds
  // (0 = axis off). Campaign drivers mix the seed id into `stress_seed_base` so distinct
  // seeds sample distinct stress streams; each stress run costs one VM invocation.
  int stress_seeds = 0;
  uint64_t stress_seed_base = 0;

  // Background-compilation axis (jit/concurrent): every JIT run of the validation (seed,
  // stress points, mutants) executes under this compile config. kSync (the default) is the
  // historical synchronous engine; kScheduled defers installs to seed-derived deterministic
  // points (campaign drivers set `compile.schedule_seed` per seed via DeriveScheduleSeed), so
  // validation observables — and therefore campaign digests — stay bit-identical to sync;
  // kBackground free-runs for throughput and forfeits run-to-run determinism.
  jaguar::CompileConfig compile;
};

// Runs Algorithm 1 for one seed program against one VM configuration.
//
// Re-entrant: every piece of mutable run state is per-invocation — each VM run owns its
// heap, trace recorder, profiles, and bug registry inside its `jaguar::Vm` instance, and all
// randomness flows through the caller-supplied `rng`. Concurrent Validate calls (the
// parallel campaign engine's workers, campaign/shard.cc) therefore never share state, except
// through the optional `params` hooks — callers that install `tune_iteration`/`on_mutant`
// must not share one ValidatorParams across threads.
ValidationReport Validate(const jaguar::Program& seed, const jaguar::VmConfig& vm_config,
                          const ValidatorParams& params, jaguar::Rng& rng);

}  // namespace artemis

#endif  // SRC_ARTEMIS_VALIDATE_VALIDATOR_H_
