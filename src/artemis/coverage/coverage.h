// Compilation-space coverage — the paper's §4.5 future-work direction, implemented:
// "we can record the coverage of the compilation space and guide Artemis to generate
// uncovered JIT-compilations ... by leveraging the logging options of the JVM".
//
// Our VM's full JIT-trace (vm/trace.h) plays the role of those logging options: from the
// temperature vectors of a run we derive, per method, which execution modes the campaign has
// already witnessed — entered compiled at level k, got compiled/OSR'd to level k mid-call,
// deoptimized. GuidedValidate() then biases each JoNM iteration toward the methods whose
// top-tier modes are still uncovered, instead of sampling methods uniformly.

#ifndef SRC_ARTEMIS_COVERAGE_COVERAGE_H_
#define SRC_ARTEMIS_COVERAGE_COVERAGE_H_

#include <map>
#include <string>
#include <vector>

#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/module.h"
#include "src/jaguar/vm/trace.h"

namespace artemis {

struct MethodCoverage {
  int max_entry_level = 0;    // hottest tier a call of this method *started* in
  int max_midcall_level = 0;  // hottest tier reached during a call (JIT/OSR compilation)
  bool deopted = false;       // a temperature drop was observed (deoptimization)

  int MaxLevel() const {
    return max_entry_level > max_midcall_level ? max_entry_level : max_midcall_level;
  }
};

// Accumulates coverage over runs (typically: over all mutants of one seed).
class SpaceCoverage {
 public:
  // Folds one run's full JIT-trace into the map. `program` resolves function indices to
  // names (coverage is keyed by method name, so it survives re-compilation of mutants,
  // whose function indices match the seed's by construction).
  void Observe(const jaguar::BcProgram& program, const jaguar::JitTrace& trace);

  const std::map<std::string, MethodCoverage>& per_method() const { return per_method_; }

  // Methods of `program` (JoNM's mutation targets, <ginit> excluded) that have not reached
  // `level` in any observed run — the uncovered compilation choices to aim for next.
  std::vector<std::string> MethodsBelowLevel(const jaguar::BcProgram& program,
                                             int level) const;

  // Fraction of methods that reached `level`, and that deoptimized at least once.
  double FractionAtLevel(const jaguar::BcProgram& program, int level) const;
  double FractionDeopted(const jaguar::BcProgram& program) const;

 private:
  std::map<std::string, MethodCoverage> per_method_;
};

// Algorithm 1 with coverage guidance: identical protocol to Validate() (same oracle, same
// MAX_ITER, same discards), but every iteration after the first prioritizes mutating the
// methods that previous iterations have not yet driven to the VM's top tier. `coverage`
// accumulates across the call and may be shared across seeds for reporting.
ValidationReport GuidedValidate(const jaguar::Program& seed,
                                const jaguar::VmConfig& vm_config,
                                const ValidatorParams& params, jaguar::Rng& rng,
                                SpaceCoverage* coverage);

}  // namespace artemis

#endif  // SRC_ARTEMIS_COVERAGE_COVERAGE_H_
