#include "src/artemis/coverage/coverage.h"

#include <algorithm>
#include <utility>

#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/support/check.h"

namespace artemis {

void SpaceCoverage::Observe(const jaguar::BcProgram& program, const jaguar::JitTrace& trace) {
  for (const jaguar::TemperatureVector& v : trace.vectors) {
    if (v.func < 0 || static_cast<size_t>(v.func) >= program.functions.size()) {
      continue;
    }
    MethodCoverage& cov = per_method_[program.functions[static_cast<size_t>(v.func)].name];
    if (!v.temps.empty()) {
      cov.max_entry_level = std::max(cov.max_entry_level, v.temps.front());
    }
    for (size_t i = 1; i < v.temps.size(); ++i) {
      if (v.temps[i] > v.temps[i - 1]) {
        cov.max_midcall_level = std::max(cov.max_midcall_level, v.temps[i]);
      } else if (v.temps[i] < v.temps[i - 1]) {
        cov.deopted = true;  // a temperature drop is a deoptimization
      }
    }
  }
}

std::vector<std::string> SpaceCoverage::MethodsBelowLevel(const jaguar::BcProgram& program,
                                                          int level) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < program.functions.size(); ++i) {
    if (static_cast<int>(i) == program.ginit_index) {
      continue;
    }
    const std::string& name = program.functions[i].name;
    auto it = per_method_.find(name);
    if (it == per_method_.end() || it->second.MaxLevel() < level) {
      out.push_back(name);
    }
  }
  return out;
}

double SpaceCoverage::FractionAtLevel(const jaguar::BcProgram& program, int level) const {
  int total = 0;
  int covered = 0;
  for (size_t i = 0; i < program.functions.size(); ++i) {
    if (static_cast<int>(i) == program.ginit_index) {
      continue;
    }
    ++total;
    auto it = per_method_.find(program.functions[i].name);
    covered += (it != per_method_.end() && it->second.MaxLevel() >= level) ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(covered) / total;
}

double SpaceCoverage::FractionDeopted(const jaguar::BcProgram& program) const {
  int total = 0;
  int covered = 0;
  for (size_t i = 0; i < program.functions.size(); ++i) {
    if (static_cast<int>(i) == program.ginit_index) {
      continue;
    }
    ++total;
    auto it = per_method_.find(program.functions[i].name);
    covered += (it != per_method_.end() && it->second.deopted) ? 1 : 0;
  }
  return total == 0 ? 0.0 : static_cast<double>(covered) / total;
}

ValidationReport GuidedValidate(const jaguar::Program& seed,
                                const jaguar::VmConfig& vm_config,
                                const ValidatorParams& params, jaguar::Rng& rng,
                                SpaceCoverage* coverage) {
  JAG_CHECK(coverage != nullptr);

  jaguar::VmConfig config = vm_config;
  config.record_full_trace = true;  // the "JVM logging options" of §4.5
  const int top_level = static_cast<int>(config.tiers.size());
  const jaguar::BcProgram seed_bc = jaguar::CompileProgram(seed);

  ValidatorParams guided = params;
  // Before each mutant: aim the mutators at methods the campaign has not yet driven to the
  // top tier. After each mutant: fold its JIT-trace into the coverage map.
  guided.tune_iteration = [&](int /*iteration*/, JonmParams& jonm) {
    jonm.prioritized_methods = coverage->MethodsBelowLevel(seed_bc, top_level);
  };
  guided.on_mutant = [&](const MutantVerdict& verdict) {
    if (verdict.outcome.full_trace != nullptr) {
      coverage->Observe(seed_bc, *verdict.outcome.full_trace);
    }
  };

  ValidationReport report = Validate(seed, config, guided, rng);
  if (report.seed_usable && report.seed_jit.full_trace != nullptr) {
    coverage->Observe(seed_bc, *report.seed_jit.full_trace);
  }
  return report;
}

}  // namespace artemis
