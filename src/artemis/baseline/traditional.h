// The traditional JIT-testing approach (paper §4.3): treat the JIT compiler as a *static*
// compiler — force every method to be compiled before its first call (the `-Xjit:count=0`
// analogue) and compare that single fully-compiled JIT-trace against the default one. This is
// the two-point testing space (choices #1 and #16 of Figure 1) that CSE generalizes.

#ifndef SRC_ARTEMIS_BASELINE_TRADITIONAL_H_
#define SRC_ARTEMIS_BASELINE_TRADITIONAL_H_

#include "src/jaguar/bytecode/module.h"
#include "src/jaguar/vm/config.h"
#include "src/jaguar/vm/engine.h"

namespace artemis {

struct TraditionalResult {
  jaguar::RunOutcome default_run;   // the program's default JIT-trace
  jaguar::RunOutcome compiled_run;  // everything compiled at the top tier from call one
  bool usable = true;               // false if either run timed out
  bool discrepancy = false;
};

// Returns a copy of `config` with all invocation thresholds forced to zero (compile-always).
jaguar::VmConfig CountZeroConfig(const jaguar::VmConfig& config);

TraditionalResult TraditionalValidate(const jaguar::BcProgram& program,
                                      const jaguar::VmConfig& config);

}  // namespace artemis

#endif  // SRC_ARTEMIS_BASELINE_TRADITIONAL_H_
