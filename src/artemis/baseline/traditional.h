// The traditional JIT-testing approach (paper §4.3): treat the JIT compiler as a *static*
// compiler — force every method to be compiled before its first call (the `-Xjit:count=0` /
// `-Xcomp` analogue) and compare that single fully-compiled run against the JIT-less
// interpreted reference (`-Xint`). This is the two-point testing space (choices #1 and #16 of
// Figure 1) that CSE generalizes: because count=0 code is compiled without any warm-up
// profile, every profile-gated defect stays dormant in both runs and the oracle is blind to
// it — the Table 4 "CSE-only" mechanism.

#ifndef SRC_ARTEMIS_BASELINE_TRADITIONAL_H_
#define SRC_ARTEMIS_BASELINE_TRADITIONAL_H_

#include "src/jaguar/bytecode/module.h"
#include "src/jaguar/vm/config.h"
#include "src/jaguar/vm/engine.h"

namespace artemis {

struct TraditionalResult {
  jaguar::RunOutcome default_run;    // the program's default JIT-trace (recorded, not compared)
  jaguar::RunOutcome reference_run;  // the JIT-less interpreted run (-Xint) — the oracle's LHS
  jaguar::RunOutcome compiled_run;   // everything compiled at the top tier from call one
  bool usable = true;                // false if any run timed out
  bool discrepancy = false;          // compiled_run observably differs from reference_run
};

// Returns a copy of `config` with all invocation thresholds forced to zero (compile-always).
jaguar::VmConfig CountZeroConfig(const jaguar::VmConfig& config);

TraditionalResult TraditionalValidate(const jaguar::BcProgram& program,
                                      const jaguar::VmConfig& config);

}  // namespace artemis

#endif  // SRC_ARTEMIS_BASELINE_TRADITIONAL_H_
