#include "src/artemis/baseline/traditional.h"

namespace artemis {

jaguar::VmConfig CountZeroConfig(const jaguar::VmConfig& config) {
  jaguar::VmConfig out = config;
  for (auto& tier : out.tiers) {
    tier.invoke_threshold = 0;
  }
  // With zero thresholds every method runs compiled at the top tier immediately — no warm-up
  // profile exists, so speculation never has one-sided branch data to act on, exactly like an
  // ahead-of-time use of the JIT.
  return out;
}

TraditionalResult TraditionalValidate(const jaguar::BcProgram& program,
                                      const jaguar::VmConfig& config) {
  TraditionalResult result;
  result.default_run = jaguar::RunProgram(program, config);
  result.reference_run = jaguar::RunProgram(program, jaguar::InterpreterOnlyConfig());
  result.compiled_run = jaguar::RunProgram(program, CountZeroConfig(config));
  if (result.default_run.status == jaguar::RunStatus::kTimeout ||
      result.reference_run.status == jaguar::RunStatus::kTimeout ||
      result.compiled_run.status == jaguar::RunStatus::kTimeout) {
    result.usable = false;
    return result;
  }
  // The static-compiler oracle: the force-compiled run against the JIT-less reference. The
  // default tiered run is deliberately NOT part of the comparison — its JIT-trace depends on
  // warm-up, which is exactly the dimension this approach treats as fixed. A defect that only
  // fires under warm profile-guided recompilation (the JDK-8288975 class) is invisible here:
  // count=0 code is compiled cold, so both runs agree.
  result.discrepancy = !result.compiled_run.SameObservable(result.reference_run);
  return result;
}

}  // namespace artemis
