// The option-fuzzing realization of CSE the paper experimented with and abandoned (§3.2):
// "randomly choosing compilation thresholds for every test program" — a JOpFuzzer-flavoured
// baseline whose exploration capability is bounded by what the exposed VM options can express.

#ifndef SRC_ARTEMIS_BASELINE_OPTION_FUZZER_H_
#define SRC_ARTEMIS_BASELINE_OPTION_FUZZER_H_

#include "src/jaguar/bytecode/module.h"
#include "src/jaguar/support/rng.h"
#include "src/jaguar/vm/config.h"
#include "src/jaguar/vm/engine.h"

namespace artemis {

struct OptionFuzzResult {
  int runs = 0;
  int discrepancies = 0;  // option combinations whose output diverged from the default run
  bool usable = true;
};

// Runs `program` under `attempts` random threshold/OSR-option combinations and compares each
// against the default run.
OptionFuzzResult OptionFuzzValidate(const jaguar::BcProgram& program,
                                    const jaguar::VmConfig& config, int attempts,
                                    jaguar::Rng& rng);

}  // namespace artemis

#endif  // SRC_ARTEMIS_BASELINE_OPTION_FUZZER_H_
