#include "src/artemis/baseline/option_fuzzer.h"

namespace artemis {

OptionFuzzResult OptionFuzzValidate(const jaguar::BcProgram& program,
                                    const jaguar::VmConfig& config, int attempts,
                                    jaguar::Rng& rng) {
  OptionFuzzResult result;
  const jaguar::RunOutcome reference = jaguar::RunProgram(program, config);
  if (reference.status == jaguar::RunStatus::kTimeout) {
    result.usable = false;
    return result;
  }

  for (int i = 0; i < attempts; ++i) {
    jaguar::VmConfig option_config = config;
    for (auto& tier : option_config.tiers) {
      // The options a real VM exposes: compile thresholds and OSR thresholds.
      tier.invoke_threshold = rng.NextBelow(20'000);
      if (tier.osr_threshold != 0) {
        tier.osr_threshold = 1 + rng.NextBelow(20'000);
      }
    }
    option_config.osr_enabled = rng.Chance(4, 5);
    const jaguar::RunOutcome run = jaguar::RunProgram(program, option_config);
    if (run.status == jaguar::RunStatus::kTimeout) {
      continue;
    }
    ++result.runs;
    result.discrepancies += run.SameObservable(reference) ? 0 : 1;
  }
  return result;
}

}  // namespace artemis
