#include "src/artemis/triage/triage.h"

#include <algorithm>
#include <utility>

#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/jit/verify/verifier.h"
#include "src/jaguar/support/json.h"
#include "src/jaguar/vm/engine.h"
#include "src/jaguar/vm/outcome.h"

namespace artemis {
namespace {

using jaguar::BcProgram;
using jaguar::RunOutcome;
using jaguar::RunStatus;
using jaguar::VmComponent;
using jaguar::VmConfig;

// Mirrors the validator's performance oracle (ValidatorParams defaults): "pathologically more
// work under the JIT" means both a 4x ratio and a 2M-step floor over the interpreter.
constexpr uint64_t kPerfRatio = 4;
constexpr uint64_t kPerfFloor = 2'000'000;

bool PathologicallySlow(const RunOutcome& jit, const RunOutcome& interp) {
  return jit.steps > kPerfRatio * interp.steps && jit.steps > interp.steps + kPerfFloor;
}

// How a triage run counts as "fixed" depends on the symptom: crashes and mis-compilations
// must match the interpreter reference observably; performance issues must merely stop being
// pathological (outputs already matched).
bool Fixed(DiscrepancyKind kind, const RunOutcome& outcome, const RunOutcome& reference) {
  if (kind == DiscrepancyKind::kPerformance) {
    return outcome.status == RunStatus::kOk && !PathologicallySlow(outcome, reference);
  }
  return outcome.SameObservable(reference);
}

// Applies one bisection knob to a copy of the vendor config.
VmConfig WithStageDisabled(const VmConfig& vm, const std::string& stage) {
  if (stage == "osr") {
    VmConfig out = vm;
    out.osr_enabled = false;
    return out;
  }
  return vm.WithPassDisabled(stage);
}

// Parses the verifier's crash message "after <stage>: <invariant>: <detail>" (pipeline.cc /
// lower.cc throw sites). Returns false when the message has a different shape.
bool ParseVerifierMessage(const std::string& message, std::string* stage,
                          std::string* invariant) {
  constexpr const char kPrefix[] = "after ";
  if (message.rfind(kPrefix, 0) != 0) {
    return false;
  }
  const size_t stage_end = message.find(": ", sizeof(kPrefix) - 1);
  if (stage_end == std::string::npos) {
    return false;
  }
  *stage = message.substr(sizeof(kPrefix) - 1, stage_end - (sizeof(kPrefix) - 1));
  const size_t inv_begin = stage_end + 2;
  const size_t inv_end = message.find(':', inv_begin);
  *invariant = message.substr(inv_begin, inv_end == std::string::npos
                                             ? std::string::npos
                                             : inv_end - inv_begin);
  return !stage->empty() && !invariant->empty();
}

// Fallback attribution for crashes that bisection cannot reach: stages that are not
// bisection knobs (IR building, the executors, deopt/recompile machinery) still identify
// themselves through the simulated crash's component.
std::string StageForComponent(VmComponent component) {
  switch (component) {
    case VmComponent::kInlining: return "inlining";
    case VmComponent::kIrBuilding: return "ir-build";
    case VmComponent::kLoopOptimization: return "loop-opt";
    case VmComponent::kConstantPropagation: return "constant-folding";
    case VmComponent::kGvn: return "gvn";
    case VmComponent::kEscapeAnalysis: return "escape-analysis";
    case VmComponent::kRangeCheckElimination: return "range-check-elimination";
    case VmComponent::kRegisterAllocation: return "regalloc";
    case VmComponent::kCodeGeneration: return "lower";
    case VmComponent::kCodeExecution: return "code-exec";
    case VmComponent::kDeoptimization: return "deopt";
    case VmComponent::kRecompilation: return "recompilation";
    case VmComponent::kGarbageCollection: return "gc";
    case VmComponent::kSpeculation: return "speculation";
    case VmComponent::kNone: return "";
  }
  return "";
}

int StageIndex(const std::string& stage) {
  const auto& stages = TriageStages();
  const auto it = std::find(stages.begin(), stages.end(), stage);
  return it == stages.end() ? -1 : static_cast<int>(it - stages.begin());
}

}  // namespace

const std::vector<std::string>& TriageStages() {
  // Pipeline order (pipeline.cc), with the pseudo-stages last: a defect masked by several
  // knobs is attributed to the latest one, matching "the last stage that touched the code".
  static const std::vector<std::string> kStages = {
      "simplify-cfg",
      "copy-propagation",
      "constant-folding",
      "dce",
      "inlining",
      "gvn",
      "licm",
      "strength-reduction",
      "range-check-elimination",
      "speculation",
      "store-sink",
      "loop-peel",
      "osr",
      "regalloc",
      "lower",
  };
  return kStages;
}

std::string TriageReport::DedupKey() const {
  if (!reproduced) {
    return "unreproduced";
  }
  std::string key = std::string(DiscrepancyName(kind)) + "@" +
                    (stage.empty() ? "unattributed" : stage);
  if (!partner.empty()) {
    key += "+" + partner;
  }
  if (!invariant.empty()) {
    key += "!" + invariant;
  }
  if (stress) {
    // The compilation-space point is part of the identity: replaying this exact stress seed
    // is what reproduces the defect.
    key += "#s" + jaguar::Hex64(stress_seed);
  }
  if (compile_mode != jaguar::CompileMode::kSync) {
    // Likewise for the tier-switch schedule: an install-timing-sensitive defect is identified
    // by the schedule that exposed it.
    key += "#c" + std::string(jaguar::CompileModeName(compile_mode));
    if (compile_mode == jaguar::CompileMode::kScheduled) {
      key += jaguar::Hex64(schedule_seed);
    }
  }
  return key;
}

std::string TriageReport::ToString() const {
  if (!reproduced) {
    return "triage: not reproduced against the interpreter reference";
  }
  std::string out = std::string("triage: ") + DiscrepancyName(kind) + " -> " +
                    (stage.empty() ? "(unattributed)" : stage);
  if (!partner.empty()) {
    out += " (with " + partner + ")";
  }
  if (!invariant.empty()) {
    out += " [" + invariant + " after " + invariant_stage + "]";
  }
  if (candidates.size() > 1) {
    out += " candidates={";
    for (size_t i = 0; i < candidates.size(); ++i) {
      out += (i > 0 ? "," : "") + candidates[i];
    }
    out += "}";
  }
  if (stress) {
    out += " [stress seed " + jaguar::Hex64(stress_seed) + "]";
  }
  if (compile_mode == jaguar::CompileMode::kScheduled) {
    out += " [install schedule " + jaguar::Hex64(schedule_seed) + "]";
  } else if (compile_mode == jaguar::CompileMode::kBackground) {
    out += " [background compile]";
  }
  if (!detail.empty()) {
    out += " — " + detail;
  }
  return out;
}

bool operator==(const TriageReport& a, const TriageReport& b) {
  return a.reproduced == b.reproduced && a.kind == b.kind && a.stage == b.stage &&
         a.partner == b.partner && a.invariant == b.invariant &&
         a.invariant_stage == b.invariant_stage && a.candidates == b.candidates &&
         a.detail == b.detail && a.stress == b.stress && a.stress_seed == b.stress_seed &&
         a.compile_mode == b.compile_mode && a.schedule_seed == b.schedule_seed &&
         a.runs == b.runs;
}

TriageReport TriageDiscrepancy(const jaguar::Program& program, const VmConfig& vm,
                               const TriageParams& params) {
  TriageReport report;

  // Sanitize the vendor config: triage controls the verify/bisection/observability knobs
  // itself, and must not write into a campaign's shared metrics/trace sinks.
  VmConfig base = vm;
  base.verify_level = jaguar::VerifyLevel::kOff;
  base.disabled_passes.clear();
  base.observer = nullptr;
  base.trace_level = jaguar::observe::TraceLevel::kOff;
  // Stress replay: pin the recorded stress seed so every triage run re-enters the exact
  // compilation-space point that surfaced the discrepancy. Stress decisions key on site
  // names, not pass positions, so bisection's disabled stages never shift them.
  base.stress = params.stress;
  report.stress = params.stress.enabled;
  report.stress_seed = params.stress.seed;
  // Compile-mode replay: the same pinning for the install schedule, so bisection explores
  // pass compositions inside the deferred-tier-switch space that surfaced the symptom.
  base.compile = params.compile;
  report.compile_mode = params.compile.mode;
  report.schedule_seed =
      params.compile.mode == jaguar::CompileMode::kScheduled ? params.compile.schedule_seed : 0;

  const BcProgram bc = jaguar::CompileProgram(program);

  jaguar::VmConfig interp = jaguar::InterpreterOnlyConfig();
  interp.step_budget = base.step_budget;
  const RunOutcome reference = jaguar::RunProgram(bc, interp);
  // The baseline run doubles as the timeline capture: a kFull private-ring trace records
  // every pass of every compilation the buggy run performed. Tracing never affects VM
  // semantics (observe_determinism_test pins this), so the outcome stays authoritative.
  const RunOutcome baseline = jaguar::RunProgram(bc, base.WithTrace(jaguar::observe::TraceLevel::kFull));
  report.runs = 2;
  if (baseline.telemetry != nullptr) {
    for (const jaguar::observe::TraceEvent& event : baseline.telemetry->events) {
      if (event.kind == jaguar::observe::EventKind::kPass && event.name != nullptr) {
        report.timeline.push_back({event.name, event.value, event.dur_us});
      }
    }
  }

  // Re-classify against the interpreter reference. (The campaign's oracle is mutant-vs-seed
  // on the same VM; in isolation the reference is interpretation, which the neutrality
  // pre-check already established as ground truth for the mutant.)
  if (baseline.status == RunStatus::kVmCrash) {
    report.kind = DiscrepancyKind::kCrash;
    report.reproduced = true;
  } else if (baseline.status == RunStatus::kTimeout && reference.status == RunStatus::kOk) {
    report.kind = DiscrepancyKind::kPerformance;
    report.reproduced = true;
  } else if (!baseline.SameObservable(reference)) {
    report.kind = DiscrepancyKind::kMisCompilation;
    report.reproduced = true;
  } else if (reference.status == RunStatus::kOk && PathologicallySlow(baseline, reference)) {
    report.kind = DiscrepancyKind::kPerformance;
    report.reproduced = true;
  }
  if (!report.reproduced) {
    report.detail = "baseline run matches the interpreter reference";
    return report;
  }

  // Verifier cross-reference: the kEveryPass run names the first stage whose output violates
  // a structural invariant — strictly stronger evidence than bisection when it fires.
  if (params.use_verifier) {
    const RunOutcome verified =
        jaguar::RunProgram(bc, base.WithVerify(jaguar::VerifyLevel::kEveryPass));
    ++report.runs;
    if (verified.status == RunStatus::kVmCrash && verified.crash_kind == "verifier") {
      ParseVerifierMessage(verified.crash_message, &report.invariant_stage,
                           &report.invariant);
    }
  }

  // Single-stage sweep: a stage whose absence restores agreement is a candidate cause.
  for (const std::string& stage : TriageStages()) {
    if (report.runs >= params.max_stage_runs) {
      break;
    }
    const RunOutcome outcome = jaguar::RunProgram(bc, WithStageDisabled(base, stage));
    ++report.runs;
    if (Fixed(report.kind, outcome, reference)) {
      report.candidates.push_back(stage);
    }
  }

  if (!report.invariant_stage.empty()) {
    // The verifier's word is final: bisection candidates are kept as corroboration only.
    report.stage = report.invariant_stage;
    report.detail = "verifier invariant " + report.invariant + " violated after " +
                    report.invariant_stage;
    return report;
  }

  if (!report.candidates.empty()) {
    std::vector<std::string> pool = report.candidates;
    if (report.kind == DiscrepancyKind::kCrash &&
        baseline.crash_component != VmComponent::kNone) {
      // Crashes carry their component; prefer candidates belonging to it (disabling an
      // upstream pass often hides a crash by starving the buggy one of its trigger pattern).
      std::vector<std::string> matching;
      for (const std::string& stage : pool) {
        if (jaguar::ComponentForStage(stage) == baseline.crash_component) {
          matching.push_back(stage);
        }
      }
      if (!matching.empty()) {
        pool = std::move(matching);
      }
    }
    // Latest in pipeline order: when several knobs mask the symptom, the defect lives in the
    // last stage that touched the code (earlier candidates merely feed it its trigger).
    report.stage = pool.back();
    report.detail = "disabling " + report.stage + " restores agreement";
    return report;
  }

  // Pairwise sweep: two interacting defects (or a defect plus the stage that exposes it) can
  // defeat single-stage bisection.
  if (params.pairwise) {
    const auto& stages = TriageStages();
    for (size_t i = 0; i < stages.size() && report.stage.empty(); ++i) {
      for (size_t j = i + 1; j < stages.size(); ++j) {
        if (report.runs >= params.max_stage_runs) {
          break;
        }
        const VmConfig pair = WithStageDisabled(WithStageDisabled(base, stages[i]), stages[j]);
        const RunOutcome outcome = jaguar::RunProgram(bc, pair);
        ++report.runs;
        if (Fixed(report.kind, outcome, reference)) {
          report.stage = stages[j];  // later stage is the primary, as above
          report.partner = stages[i];
          report.detail = "only disabling both " + stages[i] + " and " + stages[j] +
                          " restores agreement";
          break;
        }
      }
    }
    if (!report.stage.empty()) {
      return report;
    }
  }

  // No knob reaches the defect (IR building, executors, deopt machinery): fall back to the
  // crash's component when there is one.
  if (report.kind == DiscrepancyKind::kCrash) {
    report.stage = StageForComponent(baseline.crash_component);
    if (!report.stage.empty()) {
      report.detail = "no bisection knob reaches the defect; attributed by crash component (" +
                      std::string(jaguar::ComponentName(baseline.crash_component)) + ")";
      return report;
    }
  }

  // Stress disambiguation: bisection exhausted every pass knob without restoring agreement.
  // Re-run the baseline under a handful of pinned stress seeds, each a different compilation
  // space point (different pass subsets, orders, thresholds, placements). A symptom that
  // survives all of them cannot live in pass composition — the defect is in the non-pass
  // machinery — and the baseline's own telemetry then separates the two remaining suspects:
  // deopt events mean the deopt/recompile path executed (and is the prime suspect); their
  // absence leaves IR building as the only machinery every compilation shares.
  if (params.stress_probes > 0) {
    int persisted = 0;
    for (int k = 0; k < params.stress_probes; ++k) {
      VmConfig probed = base;
      probed.stress.enabled = true;
      // Derived from the pinned seed (or a fixed constant when triage ran unstressed), so the
      // probe set — and therefore the attribution — is a pure function of the inputs.
      probed.stress.seed = jaguar::DeriveStressSeed(
          params.stress.enabled ? params.stress.seed : 0x7219A6EDB15EC705ULL, 0, k);
      const RunOutcome outcome = jaguar::RunProgram(bc, probed);
      ++report.runs;
      if (Fixed(report.kind, outcome, reference)) {
        break;  // some compilation-space point hides it: the defect IS composition-sensitive
      }
      ++persisted;
    }
    if (persisted == params.stress_probes) {
      bool saw_deopt = false;
      if (baseline.telemetry != nullptr) {
        for (const jaguar::observe::TraceEvent& event : baseline.telemetry->events) {
          saw_deopt |= event.kind == jaguar::observe::EventKind::kDeopt;
        }
      }
      report.stage = saw_deopt ? "deopt" : "ir-build";
      report.detail = "symptom persists across " + std::to_string(persisted) +
                      " stress probes: defect is independent of pass composition; " +
                      (saw_deopt ? "baseline observed deoptimization events"
                                 : "no deoptimization events in the baseline");
      return report;
    }
    report.detail = "no stage attribution, and a stress probe hides the symptom: defect is "
                    "composition-sensitive but not isolable to a stage";
    return report;
  }

  report.detail = "no stage attribution: defect is outside the bisectable pipeline";
  return report;
}

}  // namespace artemis
