// Automatic triage of campaign discrepancies: pass bisection + verifier cross-reference.
//
// A campaign discrepancy says *that* the VM misbehaved on a program, not *where*. This layer
// is the stand-in for the paper's manual developer triage ("we reported ... and the developers
// attributed them to ..."): given the offending program and vendor config, it localizes the
// defect to a pipeline stage by re-running the program with optimization stages disabled one
// at a time (then pairwise), and cross-references the IR/LIR invariant verifier
// (jaguar/jit/verify) run at VerifyLevel::kEveryPass, whose first failing invariant names the
// offending stage directly.
//
// The result is a structured TriageReport whose DedupKey() the campaign uses for report
// deduplication instead of raw output signatures: two discrepancies attributed to the same
// stage with the same symptom are one bug, even when their outputs differ.

#ifndef SRC_ARTEMIS_TRIAGE_TRIAGE_H_
#define SRC_ARTEMIS_TRIAGE_TRIAGE_H_

#include <string>
#include <vector>

#include "src/artemis/validate/validator.h"
#include "src/jaguar/lang/ast.h"
#include "src/jaguar/vm/config.h"

namespace artemis {

struct TriageParams {
  // Try pairs of stages when no single stage restores agreement (two defects can mask each
  // other's single-stage bisection).
  bool pairwise = true;
  // Cross-reference a VerifyLevel::kEveryPass run; a violated invariant overrides bisection
  // (it names the stage that *produced* bad code, where bisection can only name stages whose
  // absence hides the symptom — e.g. disabling either regalloc or lowering hides a register
  // clobber, but only the verifier pins it on the allocator).
  bool use_verifier = true;
  // Upper bound on bisection VM runs (the pairwise sweep is quadratic in stages).
  int max_stage_runs = 160;

  // Stress replay: when `stress.enabled`, every triage run (baseline, verifier, bisection)
  // executes under this pinned stress seed, so a discrepancy the stress axis surfaced is
  // re-triaged inside the exact perturbed compilation space that revealed it.
  jaguar::StressConfig stress;

  // Compile-mode replay: every triage run executes under this compile config (kSync default).
  // Campaigns that validate in kScheduled mode pin the seed's derived install schedule here,
  // so a discrepancy only visible under deferred tier switches reproduces during bisection.
  jaguar::CompileConfig compile;

  // Stress disambiguation: when bisection leaves a non-crash discrepancy unattributed, probe
  // the baseline under this many pinned stress seeds. A symptom that persists across every
  // probe is independent of pass composition/order/thresholds — the defect lives in the
  // non-pass machinery — and the baseline's own telemetry (deopt events observed?) then picks
  // between the deopt/recompile path and IR building. 0 disables the phase.
  int stress_probes = 4;
};

// The structured attribution for one discrepancy.
struct TriageReport {
  // The discrepancy reproduced against a fresh interpreter reference. When false, the
  // remaining fields are empty: the original discrepancy was trace-relative (mutant vs seed
  // on the same VM) and does not manifest against ground truth in isolation.
  bool reproduced = false;
  DiscrepancyKind kind = DiscrepancyKind::kNone;

  // Final attribution: the pipeline stage held responsible ("" = unattributed). `partner` is
  // set for pairwise attributions (both stages had to be disabled to restore agreement).
  std::string stage;
  std::string partner;

  // Verifier cross-reference: first violated invariant and the stage it blames, when the
  // kEveryPass run tripped ("" when the defect is semantically invisible to the verifier).
  std::string invariant;
  std::string invariant_stage;

  // Every single stage whose disabling restored agreement with the reference, in pipeline
  // order. More than one entry means bisection alone was ambiguous.
  std::vector<std::string> candidates;

  std::string detail;

  // Stress provenance: set when the triage replayed a pinned stress seed (TriageParams::
  // stress). The seed joins DedupKey() — two attributions are one report only when they also
  // reproduce under the same compilation-space point.
  bool stress = false;
  uint64_t stress_seed = 0;

  // Compile-mode provenance: the compile config the triage replayed under (TriageParams::
  // compile). kSync for historical reports; in kScheduled mode the schedule seed joins
  // DedupKey() the way the stress seed does.
  jaguar::CompileMode compile_mode = jaguar::CompileMode::kSync;
  uint64_t schedule_seed = 0;

  // VM invocations this triage consumed (reference + baseline + verifier + bisection runs);
  // the campaign folds it into its throughput accounting.
  int runs = 0;

  // The pass-timing timeline of the offending compilation(s): every optimization pass the
  // baseline (buggy) run executed, in execution order, harvested from a TraceLevel::kFull
  // re-observation of the baseline. `dur_us` is wall-clock and therefore nondeterministic —
  // the timeline is deliberately EXCLUDED from operator==, DedupKey(), and the campaign's
  // OutcomeDigest, which all must stay run-to-run stable.
  struct PassSample {
    std::string stage;     // pass name ("gvn", "lower", "ir-build", ...)
    uint64_t ir_instrs = 0;  // IR/LIR size after the pass
    uint64_t dur_us = 0;
  };
  std::vector<PassSample> timeline;

  bool attributed() const { return !stage.empty(); }

  // Campaign dedup key: symptom + attribution (+ invariant). Reports with equal keys are
  // duplicates of one root cause regardless of their raw outputs.
  std::string DedupKey() const;
  std::string ToString() const;
};

bool operator==(const TriageReport& a, const TriageReport& b);
inline bool operator!=(const TriageReport& a, const TriageReport& b) { return !(a == b); }

// The bisection stages in pipeline order. Besides the optimization passes this includes the
// pseudo-stages "osr" (disables on-stack replacement), "regalloc" (degrades to
// spill-everything allocation), and "lower" (skips the LIR backend entirely).
const std::vector<std::string>& TriageStages();

// Triages one discrepancy: `program` is the offending (mutant) program, `vm` the vendor
// config it misbehaved on (step budget included; verify/disabled-pass knobs are reset
// internally). Deterministic in its arguments; safe to call concurrently.
TriageReport TriageDiscrepancy(const jaguar::Program& program, const jaguar::VmConfig& vm,
                               const TriageParams& params);

}  // namespace artemis

#endif  // SRC_ARTEMIS_TRIAGE_TRIAGE_H_
