#include "src/artemis/reduce/reducer.h"

#include <utility>
#include <vector>

#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/support/check.h"

namespace artemis {
namespace {

using jaguar::Program;
using jaguar::Stmt;
using jaguar::StmtKind;

void CountInStmt(const Stmt& s, size_t* n) {
  ++*n;
  for (const auto& child : s.stmts) {
    CountInStmt(*child, n);
  }
  for (const auto& arm : s.arms) {
    for (const auto& child : arm.stmts) {
      CountInStmt(*child, n);
    }
  }
}

// Collects every deletable statement slot: a pointer to the owning vector plus an index.
struct Slot {
  std::vector<jaguar::StmtPtr>* list;
  size_t index;
};

void CollectSlots(std::vector<jaguar::StmtPtr>& list, std::vector<Slot>& out) {
  for (size_t i = 0; i < list.size(); ++i) {
    out.push_back(Slot{&list, i});
    Stmt& s = *list[i];
    for (auto& child : s.stmts) {
      if (child->kind == StmtKind::kBlock) {
        CollectSlots(child->stmts, out);
      }
    }
    if (s.kind == StmtKind::kBlock) {
      // Already covered by the child loop above only for nested blocks; cover s itself.
    }
    for (auto& arm : s.arms) {
      CollectSlots(arm.stmts, out);
    }
  }
}

bool IsReferenced(const Program& p, const std::string& name) {
  // Conservative textual scan over the AST: any VarRef/Call with this name counts.
  std::function<bool(const jaguar::Expr&)> expr_refs = [&](const jaguar::Expr& e) {
    if ((e.kind == jaguar::ExprKind::kVarRef || e.kind == jaguar::ExprKind::kCall) &&
        e.name == name) {
      return true;
    }
    for (const auto& c : e.children) {
      if (expr_refs(*c)) {
        return true;
      }
    }
    return false;
  };
  std::function<bool(const Stmt&)> stmt_refs = [&](const Stmt& s) {
    for (const auto& e : s.exprs) {
      if (expr_refs(*e)) {
        return true;
      }
    }
    for (const auto& child : s.stmts) {
      if (stmt_refs(*child)) {
        return true;
      }
    }
    for (const auto& arm : s.arms) {
      for (const auto& child : arm.stmts) {
        if (stmt_refs(*child)) {
          return true;
        }
      }
    }
    return false;
  };
  for (const auto& g : p.globals) {
    if (g.init != nullptr && expr_refs(*g.init)) {
      return true;
    }
  }
  for (const auto& f : p.functions) {
    if (stmt_refs(*f->body)) {
      return true;
    }
  }
  return false;
}

// Checks a clone; returns false if it does not even type-check.
bool CheckedPredicate(Program candidate, const ReductionPredicate& keep) {
  try {
    jaguar::Check(candidate);
  } catch (const std::exception&) {
    return false;
  }
  return keep(candidate);
}

}  // namespace

size_t CountStatements(const Program& program) {
  size_t n = 0;
  for (const auto& f : program.functions) {
    CountInStmt(*f->body, &n);
  }
  return n;
}

Program ReduceProgram(const Program& program, const ReductionPredicate& keep,
                      ReductionStats* stats, int max_rounds) {
  Program current = program.Clone();
  ReductionStats local;
  local.initial_statements = CountStatements(current);

  bool changed = true;
  while (changed && local.rounds < max_rounds) {
    changed = false;
    ++local.rounds;

    // 1. Statement deletion, back to front so earlier indices stay valid.
    std::vector<Slot> slots;
    for (auto& f : current.functions) {
      CollectSlots(f->body->stmts, slots);
    }
    for (size_t k = slots.size(); k-- > 0;) {
      Slot slot = slots[k];
      if (slot.index >= slot.list->size()) {
        continue;  // invalidated by an earlier deletion in the same list
      }
      Program candidate = current.Clone();
      // Re-resolve the slot in the clone by replaying the collection walk.
      std::vector<Slot> clone_slots;
      for (auto& f : candidate.functions) {
        CollectSlots(f->body->stmts, clone_slots);
      }
      if (k >= clone_slots.size()) {
        continue;
      }
      Slot clone_slot = clone_slots[k];
      clone_slot.list->erase(clone_slot.list->begin() +
                             static_cast<ptrdiff_t>(clone_slot.index));
      ++local.candidates_tried;
      if (CheckedPredicate(candidate.Clone(), keep)) {
        current = std::move(candidate);
        ++local.deletions_kept;
        changed = true;
        // Slot indices into `current` are stale now; restart this pass.
        slots.clear();
        for (auto& f : current.functions) {
          CollectSlots(f->body->stmts, slots);
        }
        k = slots.size();
      }
    }

    // 2. Unreferenced functions (never main).
    for (size_t i = current.functions.size(); i-- > 0;) {
      const std::string name = current.functions[i]->name;
      if (name == "main" || IsReferenced(current, name)) {
        continue;
      }
      Program candidate = current.Clone();
      candidate.functions.erase(candidate.functions.begin() + static_cast<ptrdiff_t>(i));
      ++local.candidates_tried;
      if (CheckedPredicate(candidate.Clone(), keep)) {
        current = std::move(candidate);
        ++local.deletions_kept;
        changed = true;
      }
    }

    // 3. Unreferenced globals.
    for (size_t i = current.globals.size(); i-- > 0;) {
      const std::string name = current.globals[i].name;
      if (IsReferenced(current, name)) {
        continue;
      }
      Program candidate = current.Clone();
      candidate.globals.erase(candidate.globals.begin() + static_cast<ptrdiff_t>(i));
      ++local.candidates_tried;
      if (CheckedPredicate(candidate.Clone(), keep)) {
        current = std::move(candidate);
        ++local.deletions_kept;
        changed = true;
      }
    }
  }

  local.final_statements = CountStatements(current);
  if (stats != nullptr) {
    *stats = local;
  }
  jaguar::Check(current);
  return current;
}

TriagedReduction ReduceTriaged(const Program& program, const jaguar::VmConfig& vm,
                               const TriageParams& params, int max_rounds) {
  TriagedReduction out;
  out.triage = TriageDiscrepancy(program, vm, params);
  if (!out.triage.reproduced) {
    out.program = program.Clone();
    out.stats.initial_statements = out.stats.final_statements = CountStatements(out.program);
    return out;
  }
  const std::string key = out.triage.DedupKey();
  // Re-triage every candidate: acceptance requires the same attribution key, not merely
  // "still misbehaves" — that is exactly the slippage a raw predicate permits.
  const ReductionPredicate keep = [&](const Program& candidate) {
    const TriageReport t = TriageDiscrepancy(candidate, vm, params);
    return t.reproduced && t.DedupKey() == key;
  };
  out.program = ReduceProgram(program, keep, &out.stats, max_rounds);
  out.triage = TriageDiscrepancy(out.program, vm, params);
  JAG_CHECK_MSG(out.triage.DedupKey() == key, "reducer changed the triaged attribution");
  out.reduced = true;
  return out;
}

}  // namespace artemis
