// Test-case reducer — the Perses/C-Reduce stand-in (paper §2.2 reduces its Figure 2 case with
// both before manual cleanup). A simple fixpoint delta reducer over Jaguar ASTs: it repeatedly
// tries to delete statements, switch arms, unreferenced functions, and unreferenced globals,
// keeping a deletion only when the reduced program still type-checks and still satisfies the
// caller's predicate (e.g. "this mutant still diverges from the seed on HotSniff").

#ifndef SRC_ARTEMIS_REDUCE_REDUCER_H_
#define SRC_ARTEMIS_REDUCE_REDUCER_H_

#include <functional>

#include "src/artemis/triage/triage.h"
#include "src/jaguar/lang/ast.h"
#include "src/jaguar/vm/config.h"

namespace artemis {

// Returns true when the candidate still exhibits the behaviour of interest. The callback
// receives a *checked* program.
using ReductionPredicate = std::function<bool(const jaguar::Program&)>;

struct ReductionStats {
  int rounds = 0;
  int candidates_tried = 0;
  int deletions_kept = 0;
  size_t initial_statements = 0;
  size_t final_statements = 0;
};

// Reduces `program` (which must satisfy `keep`) to a smaller program that still satisfies it.
// Deterministic; terminates at a fixpoint or after `max_rounds`.
jaguar::Program ReduceProgram(const jaguar::Program& program, const ReductionPredicate& keep,
                              ReductionStats* stats = nullptr, int max_rounds = 16);

// Total statement count of a program (reduction progress metric).
size_t CountStatements(const jaguar::Program& program);

struct TriagedReduction {
  jaguar::Program program;   // the reduced program
  TriageReport triage;       // its attribution — same DedupKey() as the input's
  ReductionStats stats;
  bool reduced = false;      // false when the input did not reproduce under triage
};

// Attribution-stable reduction. A plain "still misbehaves" predicate lets the root cause
// slip mid-reduction: a shrink step can trade the original defect for a different, easier
// to trigger one, and the reducer happily keeps shrinking the wrong bug. This variant triages
// the input once, then re-triages every candidate and accepts a shrink only when the
// attribution DedupKey (symptom + stage + invariant) is unchanged — slippage is rejected even
// when the candidate still crashes. When the input does not reproduce against the interpreter
// reference, the program is returned unreduced with `reduced == false`.
TriagedReduction ReduceTriaged(const jaguar::Program& program, const jaguar::VmConfig& vm,
                               const TriageParams& params = {}, int max_rounds = 16);

}  // namespace artemis

#endif  // SRC_ARTEMIS_REDUCE_REDUCER_H_
