// Test-case reducer — the Perses/C-Reduce stand-in (paper §2.2 reduces its Figure 2 case with
// both before manual cleanup). A simple fixpoint delta reducer over Jaguar ASTs: it repeatedly
// tries to delete statements, switch arms, unreferenced functions, and unreferenced globals,
// keeping a deletion only when the reduced program still type-checks and still satisfies the
// caller's predicate (e.g. "this mutant still diverges from the seed on HotSniff").

#ifndef SRC_ARTEMIS_REDUCE_REDUCER_H_
#define SRC_ARTEMIS_REDUCE_REDUCER_H_

#include <functional>

#include "src/jaguar/lang/ast.h"

namespace artemis {

// Returns true when the candidate still exhibits the behaviour of interest. The callback
// receives a *checked* program.
using ReductionPredicate = std::function<bool(const jaguar::Program&)>;

struct ReductionStats {
  int rounds = 0;
  int candidates_tried = 0;
  int deletions_kept = 0;
  size_t initial_statements = 0;
  size_t final_statements = 0;
};

// Reduces `program` (which must satisfy `keep`) to a smaller program that still satisfies it.
// Deterministic; terminates at a fixpoint or after `max_rounds`.
jaguar::Program ReduceProgram(const jaguar::Program& program, const ReductionPredicate& keep,
                              ReductionStats* stats = nullptr, int max_rounds = 16);

// Total statement count of a program (reduction progress metric).
size_t CountStatements(const jaguar::Program& program);

}  // namespace artemis

#endif  // SRC_ARTEMIS_REDUCE_REDUCER_H_
