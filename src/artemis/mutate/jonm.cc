#include "src/artemis/mutate/jonm.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>
#include <utility>

#include "src/jaguar/lang/parser.h"
#include "src/jaguar/lang/printer.h"
#include "src/jaguar/lang/scope.h"
#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/support/check.h"

namespace artemis {
namespace {

using jaguar::Expr;
using jaguar::FuncDecl;
using jaguar::InsertionPoint;
using jaguar::Program;
using jaguar::Rng;
using jaguar::Stmt;
using jaguar::StmtKind;
using jaguar::StmtPtr;
using jaguar::Type;
using jaguar::VarInfo;

std::vector<VarInfo> GlobalVarInfos(const Program& p) {
  std::vector<VarInfo> out;
  for (const auto& g : p.globals) {
    out.push_back(VarInfo{g.name, g.type, /*is_global=*/true});
  }
  return out;
}

bool ContainsReturn(const Stmt& s);
bool ContainsLoopContinue(const Stmt& s);

// Collects the names of variables (locals or globals) directly assigned anywhere in `s`, and
// sets *has_calls when `s` contains any call (whose callee may write arbitrary globals).
void CollectWrites(const Stmt& s, std::set<std::string>* written, bool* has_calls);

void CollectCallsInExprTree(const jaguar::Expr& e, bool* has_calls) {
  if (e.kind == jaguar::ExprKind::kCall) {
    *has_calls = true;
  }
  for (const auto& c : e.children) {
    CollectCallsInExprTree(*c, has_calls);
  }
}

void CollectWrites(const Stmt& s, std::set<std::string>* written, bool* has_calls) {
  if (s.kind == StmtKind::kAssign && s.exprs[0]->kind == jaguar::ExprKind::kVarRef) {
    written->insert(s.exprs[0]->name);
  }
  for (const auto& e : s.exprs) {
    CollectCallsInExprTree(*e, has_calls);
  }
  for (const auto& child : s.stmts) {
    CollectWrites(*child, written, has_calls);
  }
  for (const auto& arm : s.arms) {
    for (const auto& child : arm.stmts) {
      CollectWrites(*child, written, has_calls);
    }
  }
}

// True if `s` contains a break/continue that would re-bind to the synthesized loop when the
// statement is moved inside it, or a return (which would leave the mute scope unbalanced).
// Breaks inside s's own loops/switches are fine.
bool UnsafeToWrap(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kReturn:
      return true;
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return true;
    case StmtKind::kWhile:
    case StmtKind::kFor:
      // Their breaks/continues bind inside — but a `return` anywhere is still unsafe.
      for (const auto& child : s.stmts) {
        if (ContainsReturn(*child)) {
          return true;
        }
      }
      return false;
    case StmtKind::kSwitch:
      for (const auto& arm : s.arms) {
        for (const auto& child : arm.stmts) {
          if (ContainsReturn(*child) || ContainsLoopContinue(*child)) {
            return true;
          }
        }
      }
      return false;
    default:
      for (const auto& child : s.stmts) {
        if (UnsafeToWrap(*child)) {
          return true;
        }
      }
      for (const auto& arm : s.arms) {
        for (const auto& child : arm.stmts) {
          if (UnsafeToWrap(*child)) {
            return true;
          }
        }
      }
      return false;
  }
}

bool ContainsReturn(const Stmt& s) {
  if (s.kind == StmtKind::kReturn) {
    return true;
  }
  for (const auto& child : s.stmts) {
    if (ContainsReturn(*child)) {
      return true;
    }
  }
  for (const auto& arm : s.arms) {
    for (const auto& child : arm.stmts) {
      if (ContainsReturn(*child)) {
        return true;
      }
    }
  }
  return false;
}

// A `continue` in a switch arm binds to an *enclosing loop*; moving the switch into the
// synthesized loop re-binds it there.
bool ContainsLoopContinue(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kContinue:
      return true;
    case StmtKind::kWhile:
    case StmtKind::kFor:
      return false;  // binds inside
    default:
      for (const auto& child : s.stmts) {
        if (ContainsLoopContinue(*child)) {
          return true;
        }
      }
      for (const auto& arm : s.arms) {
        for (const auto& child : arm.stmts) {
          if (ContainsLoopContinue(*child)) {
            return true;
          }
        }
      }
      return false;
  }
}

class Mutator {
 public:
  Mutator(Program& program, const JonmParams& params, Rng& rng)
      : program_(program), params_(params), rng_(rng), globals_(GlobalVarInfos(program)) {}

  bool MutateMethod(FuncDecl& f) {
    JAG_CHECK(!params_.mutators.empty());
    MutatorKind kind = params_.mutators[rng_.PickIndex(params_.mutators.size())];

    auto points = jaguar::CollectInsertionPoints(f);
    JAG_CHECK(!points.empty());
    const InsertionPoint& rho = points[rng_.PickIndex(points.size())];

    switch (kind) {
      case MutatorKind::kMethodInvocator:
        if (ApplyMi(f)) {
          last_applied_ = MutatorKind::kMethodInvocator;
          return true;
        }
        // No call site for this method — fall back to LI at ρ (the paper's mutator choice is
        // "random from LI, SW, MI"; an inapplicable MI degrades to the simplest mutator).
        ApplyLi(rho);
        last_applied_ = MutatorKind::kLoopInserter;
        return true;
      case MutatorKind::kStatementWrapper:
        if (ApplySw(rho)) {
          last_applied_ = MutatorKind::kStatementWrapper;
          return true;
        }
        ApplyLi(rho);
        last_applied_ = MutatorKind::kLoopInserter;
        return true;
      case MutatorKind::kLoopInserter:
      default:
        ApplyLi(rho);
        last_applied_ = MutatorKind::kLoopInserter;
        return true;
    }
  }

  MutatorKind last_applied() const { return last_applied_; }

  // Starts fresh "jnN" names at `floor` (see FreshNameFloor below).
  void SeedNameCounter(int floor) { name_counter_ = floor; }

 private:
  LoopSynthesizer MakeSynth(const std::vector<VarInfo>& visible) {
    return LoopSynthesizer(rng_, params_.synth, visible, globals_, &name_counter_);
  }

  // --- LI: insert the synthesized loop at ρ. --------------------------------------------------
  void ApplyLi(const InsertionPoint& rho) {
    LoopSynthesizer synth = MakeSynth(rho.visible);
    StmtPtr loop = synth.BuildWrappedLoop("");
    loop->synthesized = true;
    rho.block->stmts.insert(rho.block->stmts.begin() + static_cast<ptrdiff_t>(rho.index),
                            std::move(loop));
  }

  // --- SW: wrap the statement right after ρ into the loop, executed once under a flag. --------
  bool ApplySw(const InsertionPoint& rho) {
    if (rho.index >= rho.block->stmts.size()) {
      return false;  // ρ is at the end of a block: nothing to wrap
    }
    Stmt& target = *rho.block->stmts[rho.index];
    if (target.kind == StmtKind::kVarDecl || UnsafeToWrap(target)) {
      // Wrapping a declaration would hide it from later statements; wrapping a statement with
      // escaping control flow would re-bind it to the synthesized loop.
      return false;
    }

    // Soundness of the neutrality wrapper: the restore epilogue must not clobber the wrapped
    // statement's own writes, so anything `target` assigns — and every global, when it makes
    // calls — is removed from the synthesizer's variable pool (never reused, never in V′).
    // Placing the wrapped statement first in the body additionally guarantees it executes in
    // a pre-synthesis (clean) state on the first iteration.
    std::set<std::string> written;
    bool has_calls = false;
    CollectWrites(target, &written, &has_calls);
    std::vector<VarInfo> filtered_visible;
    for (const auto& v : rho.visible) {
      if (written.count(v.name) == 0) {
        filtered_visible.push_back(v);
      }
    }
    std::vector<VarInfo> filtered_globals;
    if (!has_calls) {
      for (const auto& g : globals_) {
        if (written.count(g.name) == 0) {
          filtered_globals.push_back(g);
        }
      }
    }
    LoopSynthesizer synth(rng_, params_.synth, filtered_visible, filtered_globals,
                          &name_counter_);
    const std::string exec_flag = synth.FreshName();
    // The wrapped statement runs exactly once, un-muted (it belongs to the seed's semantics).
    std::string middle = "if (!" + exec_flag + ") {\nmute(false);\n";
    middle += jaguar::PrintStmt(target);
    middle += "mute(true);\n" + exec_flag + " = true;\n}\n";

    StmtPtr wrapper = synth.BuildWrappedLoop(middle, {}, /*middle_first=*/true);
    // Splice: { boolean exec = false; <wrapper> } replaces the wrapped statement. The outer
    // block is marked synthesized as a whole — the wrapped seed statement inside it is
    // already exercised through the loop and is off-limits for further mutations.
    std::vector<StmtPtr> spliced;
    spliced.push_back(jaguar::MakeVarDecl(Type::Bool(), exec_flag, jaguar::MakeBoolLit(false)));
    spliced.push_back(std::move(wrapper));
    StmtPtr outer = jaguar::MakeBlock(std::move(spliced));
    outer->synthesized = true;
    rho.block->stmts[rho.index] = std::move(outer);
    return true;
  }

  // --- MI: pre-invoke method m under a fresh control flag before one of its real calls. -------
  bool ApplyMi(FuncDecl& m) {
    if (m.name == "main") {
      return false;
    }
    // Find every statement position that contains a call to m; the loop is inserted there.
    std::vector<InsertionPoint> sites;
    for (auto& f : program_.functions) {
      auto points = jaguar::CollectInsertionPoints(*f);
      for (auto& p : points) {
        if (p.index >= p.block->stmts.size()) {
          continue;
        }
        std::vector<Expr*> calls;
        jaguar::CollectCalls(*p.block->stmts[p.index], m.name, calls);
        if (!calls.empty()) {
          sites.push_back(std::move(p));
        }
      }
    }
    if (sites.empty()) {
      return false;
    }
    const InsertionPoint& site = sites[rng_.PickIndex(sites.size())];

    // The control flag is a new global (the paper's `P.m_ctrl` class field).
    const std::string flag = "jnctl" + std::to_string(name_counter_++);
    jaguar::GlobalDecl flag_decl;
    flag_decl.type = Type::Bool();
    flag_decl.name = flag;
    flag_decl.init = jaguar::MakeBoolLit(false);
    program_.globals.push_back(std::move(flag_decl));
    globals_.push_back(VarInfo{flag, Type::Bool(), true});

    // Early-return prologue at m's entry, synthesized with m's own scope (params + globals).
    // Its reused *globals* join the caller-side V′ (Algorithm 2's shared backup set);
    // parameter writes die with each pre-invocation frame and need no restore.
    std::vector<VarInfo> m_scope;
    for (const auto& p : m.params) {
      m_scope.push_back(VarInfo{p.name, p.type, false});
    }
    LoopSynthesizer prologue_synth = MakeSynth(m_scope);
    std::string prologue = "if (" + flag + ") {\n";
    if (params_.synth.stmts_per_hole > 0) {
      prologue += prologue_synth.SynStmtsText();
    }
    prologue += m.ret.IsVoid() ? "return;\n"
                               : "return " + prologue_synth.SynExprText(m.ret) + ";\n";
    prologue += "}\n";
    std::vector<StmtPtr> prologue_stmts = jaguar::ParseStatements(prologue);
    JAG_CHECK(prologue_stmts.size() == 1);

    std::map<std::string, Type> prologue_globals;
    // The control flag itself must be restored by the wrapper: a trap escaping a
    // pre-invocation would otherwise skip the `flag = false` reset and leave the real call
    // taking the prologue's early return — changing the seed's semantics.
    prologue_globals[flag] = Type::Bool();
    for (const auto& [name, type] : prologue_synth.reused()) {
      bool is_global = false;
      for (const auto& g : globals_) {
        is_global |= g.name == name;
      }
      if (is_global) {
        prologue_globals[name] = type;
      }
    }

    // The pre-invocation loop: flag on, call m with synthesized arguments, flag off.
    LoopSynthesizer call_synth = MakeSynth(site.visible);
    std::string call = flag + " = true;\n" + m.name + "(";
    for (size_t i = 0; i < m.params.size(); ++i) {
      if (i > 0) {
        call += ", ";
      }
      call += call_synth.SynExprText(m.params[i].type);
    }
    call += ");\n" + flag + " = false;\n";

    StmtPtr wrapper = call_synth.BuildWrappedLoop(call, prologue_globals);
    wrapper->synthesized = true;
    site.block->stmts.insert(site.block->stmts.begin() + static_cast<ptrdiff_t>(site.index),
                             std::move(wrapper));
    // Insert the prologue last: if the chosen site is inside m's own body block, the insert
    // above already happened at a stable index.
    prologue_stmts[0]->synthesized = true;
    m.body->stmts.insert(m.body->stmts.begin(), std::move(prologue_stmts[0]));
    return true;
  }

  Program& program_;
  const JonmParams& params_;
  Rng& rng_;
  std::vector<VarInfo> globals_;
  int name_counter_ = 0;
  MutatorKind last_applied_ = MutatorKind::kLoopInserter;
};

}  // namespace

const char* MutatorName(MutatorKind kind) {
  switch (kind) {
    case MutatorKind::kLoopInserter: return "LI";
    case MutatorKind::kStatementWrapper: return "SW";
    case MutatorKind::kMethodInvocator: return "MI";
  }
  return "?";
}

// First unused suffix of the synthesizer's "jnN"/"jnctlN" name families in `program`.
// Mutating an already-mutated program (the evolving corpus re-mutates its own printed
// mutants) must not restart fresh names at jn0: the language forbids shadowing, so a second-
// generation jn0 inside the scope of a first-generation jn0 is a type error.
int FreshNameFloor(jaguar::Program& program) {
  int max_seen = -1;
  auto consider = [&](const std::string& name) {
    for (const char* prefix : {"jnctl", "jn"}) {
      const size_t len = std::strlen(prefix);
      if (name.size() <= len || name.compare(0, len, prefix) != 0) {
        continue;
      }
      bool digits = true;
      for (size_t i = len; i < name.size(); ++i) {
        digits = digits && name[i] >= '0' && name[i] <= '9';
      }
      if (digits) {
        max_seen = std::max(max_seen, std::atoi(name.c_str() + len));
      }
      break;  // "jnctl" names must not be re-tested against the "jn" prefix
    }
  };
  for (const auto& f : program.functions) {
    for (const jaguar::InsertionPoint& point : jaguar::CollectInsertionPoints(*f)) {
      for (const jaguar::VarInfo& var : point.visible) {
        consider(var.name);
      }
    }
  }
  return max_seen + 1;
}

MutationResult JoNM(const jaguar::Program& seed, const JonmParams& params, Rng& rng) {
  MutationResult result;
  result.mutant = seed.Clone();
  Mutator mutator(result.mutant, params, rng);
  mutator.SeedNameCounter(FreshNameFloor(result.mutant));

  // Algorithm 1, lines 10–15: coin-flip selection over the program's exclusive methods. The
  // function list may grow via MI side effects only (it does not), so a snapshot of the
  // original count is iterated.
  const size_t original_count = result.mutant.functions.size();
  for (size_t i = 0; i < original_count; ++i) {
    const std::string& fname = result.mutant.functions[i]->name;
    const bool prioritized =
        std::find(params.prioritized_methods.begin(), params.prioritized_methods.end(),
                  fname) != params.prioritized_methods.end();
    if (!prioritized && !rng.Chance(params.select_numerator, params.select_denominator)) {
      continue;
    }
    FuncDecl& f = *result.mutant.functions[i];
    if (mutator.MutateMethod(f)) {
      result.applied.push_back(MutationRecord{mutator.last_applied(), f.name});
    }
  }
  if (result.applied.empty()) {
    // Guarantee at least one mutation (an unchanged mutant cannot explore a new JIT-trace).
    const size_t pick = rng.PickIndex(original_count);
    FuncDecl& f = *result.mutant.functions[pick];
    if (mutator.MutateMethod(f)) {
      result.applied.push_back(MutationRecord{mutator.last_applied(), f.name});
    }
  }

  jaguar::Check(result.mutant);
  return result;
}

}  // namespace artemis
