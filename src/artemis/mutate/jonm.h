// JIT-Op Neutral Mutation — the paper's §3.3/§3.4 and the JoNM function of Algorithm 1.
//
// Given a seed program, JoNM stochastically selects methods and splices a synthesized,
// semantics-preserving loop into each at a random program point ρ, using one of three
// mutators (paper Figure 3):
//
//   LI (Loop Inserter)      — inserts the synthesized loop at ρ. Heats the containing method's
//                             back-edge counters: OSR compilation, possibly at several levels.
//   SW (Statement Wrapper)  — additionally moves the statement right after ρ *into* the loop,
//                             executed exactly once under an `exec` control flag: the wrapped
//                             statement and the loop are compiled together, driving different
//                             control/data-flow through the optimizer than LI.
//   MI (Method Invocator)   — picks an existing call to method m, inserts a loop right before
//                             it that pre-invokes m thousands of times under a fresh control
//                             flag (a new global), and plants an early-return prologue
//                             `if (flag) { <stmts>; return <expr>; }` at m's entry. m gets
//                             method-JIT-compiled — and speculatively optimized against the
//                             biased flag — before its real call, which then deoptimizes:
//                             exactly the JDK-8288975 scenario of the paper's Figure 2.
//
// Every mutation is neutral by construction: reused variables are backed up/restored, output
// is muted around the loop, traps are caught and discarded, and synthesized names are fresh.
// Mutants therefore (1) drive a different JIT-trace than the seed while (2) preserving its
// output — any observable divergence under the same VM is a JIT-compiler bug.

#ifndef SRC_ARTEMIS_MUTATE_JONM_H_
#define SRC_ARTEMIS_MUTATE_JONM_H_

#include <string>
#include <vector>

#include "src/artemis/synth/synthesis.h"
#include "src/jaguar/lang/ast.h"
#include "src/jaguar/support/rng.h"

namespace artemis {

enum class MutatorKind : uint8_t { kLoopInserter, kStatementWrapper, kMethodInvocator };

const char* MutatorName(MutatorKind kind);

struct JonmParams {
  SynthParams synth;
  // Per-method selection probability (Algorithm 1 line 11's FlipCoin).
  uint32_t select_numerator = 1;
  uint32_t select_denominator = 2;
  // Enabled mutators (ablation hook); empty is invalid.
  std::vector<MutatorKind> mutators = {MutatorKind::kLoopInserter,
                                       MutatorKind::kStatementWrapper,
                                       MutatorKind::kMethodInvocator};

  // Coverage guidance (the paper's §4.5 future-work direction): methods in this list are
  // always selected for mutation; the rest keep the stochastic coin flip. Empty = pure
  // stochastic sampling (the paper's Artemis).
  std::vector<std::string> prioritized_methods;
};

struct MutationRecord {
  MutatorKind kind;
  std::string method;  // the method whose JIT-ops were mutated
};

struct MutationResult {
  jaguar::Program mutant;  // type-checked and ready to compile
  std::vector<MutationRecord> applied;
};

// JoNM(P): derives one neutral mutant of `seed` (paper Algorithm 1, lines 8–16). At least one
// mutation is always applied (a mutant identical to the seed would waste a VM invocation).
// Throws jaguar::SyntaxError/InternalError only on internal tool bugs.
MutationResult JoNM(const jaguar::Program& seed, const JonmParams& params, jaguar::Rng& rng);

}  // namespace artemis

#endif  // SRC_ARTEMIS_MUTATE_JONM_H_
