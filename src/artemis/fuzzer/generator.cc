#include "src/artemis/fuzzer/generator.h"

#include <string>
#include <utility>
#include <vector>

#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/support/check.h"

namespace artemis {
namespace {

using jaguar::AssignOp;
using jaguar::BinOp;
using jaguar::Expr;
using jaguar::ExprPtr;
using jaguar::FuncDecl;
using jaguar::GlobalDecl;
using jaguar::Program;
using jaguar::Rng;
using jaguar::Stmt;
using jaguar::StmtPtr;
using jaguar::Type;
using jaguar::TypeKind;
using jaguar::UnOp;

// All generated arrays have exactly this length, so constant and `x % kArrayLen` indexing is
// always in bounds by construction.
constexpr int kArrayLen = 10;

struct GenVar {
  std::string name;
  Type type;
  bool mutable_var = true;   // loop counters are frozen inside their own bodies
  bool nonneg = false;       // loop induction variables (safe as `v % kArrayLen` indices)
};

class Generator {
 public:
  Generator(const FuzzConfig& config, uint64_t seed) : config_(config), rng_(seed) {}

  Program Generate() {
    const int num_globals = rng_.NextInt(config_.min_globals, config_.max_globals);
    for (int i = 0; i < num_globals; ++i) {
      EmitGlobal(i);
    }
    const int num_functions = rng_.NextInt(config_.min_functions, config_.max_functions);
    for (int i = 0; i < num_functions; ++i) {
      EmitFunction(i);
    }
    EmitMain();
    jaguar::Check(program_);
    return std::move(program_);
  }

 private:
  // --- Declarations ---------------------------------------------------------------------------

  Type RandomPrimitive() {
    switch (rng_.NextInt(0, 3)) {
      case 0: return Type::Int();
      case 1: return Type::Int();  // int-biased, like typical fuzzed Java
      case 2: return Type::Long();
      default: return Type::Bool();
    }
  }

  void EmitGlobal(int index) {
    GlobalDecl g;
    g.name = "g" + std::to_string(index);
    if (rng_.Chance(1, 5)) {
      g.type = Type::ArrayOf(TypeKind::kInt);
      std::vector<ExprPtr> elems;
      for (int i = 0; i < kArrayLen; ++i) {
        elems.push_back(jaguar::MakeIntLit(rng_.NextInt(-20, 20)));
      }
      g.init = jaguar::MakeNewArrayInit(TypeKind::kInt, std::move(elems));
    } else {
      g.type = RandomPrimitive();
      g.init = LiteralOf(g.type);
    }
    globals_.push_back(GenVar{g.name, g.type, true, false});
    program_.globals.push_back(std::move(g));
  }

  void EmitFunction(int index) {
    auto f = std::make_unique<FuncDecl>();
    f->name = "f" + std::to_string(index);
    switch (rng_.NextInt(0, 3)) {
      case 0: f->ret = Type::Void(); break;
      case 1: f->ret = Type::Int(); break;
      case 2: f->ret = Type::Long(); break;
      default: f->ret = Type::Bool(); break;
    }
    const int nparams = rng_.NextInt(0, config_.max_params);
    for (int p = 0; p < nparams; ++p) {
      f->params.push_back(jaguar::Param{RandomPrimitive(), "p" + std::to_string(p)});
    }

    scopes_.clear();
    scopes_.emplace_back();
    for (const auto& p : f->params) {
      scopes_.back().push_back(GenVar{p.name, p.type, true, false});
    }
    callable_limit_ = index;  // may call f0..f(index-1): the call graph stays acyclic
    current_cost_ = 0;
    cost_multiplier_ = 1;

    std::vector<StmtPtr> body = GenBlockStmts(config_.max_stmt_depth);
    if (!f->ret.IsVoid()) {
      body.push_back(jaguar::MakeReturn(GenExpr(f->ret, config_.max_expr_depth)));
    }
    f->body = jaguar::MakeBlock(std::move(body));
    est_cost_.push_back(current_cost_ + 10);
    program_.functions.push_back(std::move(f));
  }

  void EmitMain() {
    auto f = std::make_unique<FuncDecl>();
    f->name = "main";
    f->ret = Type::Int();
    scopes_.clear();
    scopes_.emplace_back();
    callable_limit_ = static_cast<int>(program_.functions.size());
    current_cost_ = 0;
    cost_multiplier_ = 1;

    std::vector<StmtPtr> body = GenBlockStmts(config_.max_stmt_depth);
    // A few extra direct calls so every function is reachable even if GenBlockStmts missed it
    // (the paper's seeds call each method a handful of times).
    for (int i = 0; i < callable_limit_; ++i) {
      const int times = rng_.NextInt(1, 2);
      for (int t = 0; t < times; ++t) {
        body.push_back(jaguar::MakeExprStmt(GenCallTo(i)));
      }
    }
    // Observability: print every global at the end.
    for (const auto& g : globals_) {
      if (g.type.IsArray()) {
        for (int k = 0; k < 3; ++k) {
          body.push_back(jaguar::MakePrint(jaguar::MakeIndex(
              jaguar::MakeVarRef(g.name), jaguar::MakeIntLit(rng_.NextInt(0, kArrayLen - 1)))));
        }
      } else {
        body.push_back(jaguar::MakePrint(jaguar::MakeVarRef(g.name)));
      }
    }
    body.push_back(jaguar::MakeReturn(jaguar::MakeIntLit(0)));
    f->body = jaguar::MakeBlock(std::move(body));
    program_.functions.push_back(std::move(f));
  }

  // --- Scope helpers --------------------------------------------------------------------------

  std::vector<const GenVar*> VisibleVars(Type type, bool need_mutable) const {
    std::vector<const GenVar*> out;
    for (const auto& scope : scopes_) {
      for (const auto& v : scope) {
        if (v.type == type && (!need_mutable || v.mutable_var)) {
          out.push_back(&v);
        }
      }
    }
    for (const auto& g : globals_) {
      if (g.type == type) {
        out.push_back(&g);
      }
    }
    return out;
  }

  std::vector<const GenVar*> NonNegVars() const {
    std::vector<const GenVar*> out;
    for (const auto& scope : scopes_) {
      for (const auto& v : scope) {
        if (v.nonneg) {
          out.push_back(&v);
        }
      }
    }
    return out;
  }

  std::string FreshName(const char* prefix) {
    return std::string(prefix) + std::to_string(next_name_++);
  }

  // --- Expressions ----------------------------------------------------------------------------

  ExprPtr LiteralOf(Type t) {
    if (t.IsBool()) {
      return jaguar::MakeBoolLit(rng_.FlipCoin());
    }
    if (t.IsLong()) {
      if (rng_.Chance(static_cast<uint32_t>(config_.interesting_literal_pct), 100)) {
        static const int64_t kInteresting[] = {0,       1,          -1,         63,
                                               64,      4294967296, -4294967296, INT64_MAX / 2,
                                               1 << 20, -(1 << 20)};
        return jaguar::MakeLongLit(
            kInteresting[rng_.PickIndex(sizeof(kInteresting) / sizeof(int64_t))]);
      }
      return jaguar::MakeLongLit(rng_.NextInRange(-64, 64));
    }
    if (rng_.Chance(static_cast<uint32_t>(config_.interesting_literal_pct), 100)) {
      // Shift-range values 32/33/63 are deliberately absent: JoNM's synthesized expressions
      // supply them (@SH holes), keeping the shift-fold defect out of raw seeds.
      static const int64_t kInteresting[] = {0,  1,   -1,  2,    7,     8,     16,        31,
                                             64, 100, 255, 256,  1024,  -8,    -32,       -128,
                                             -255, 4096, 65535, 2147483647, -2147483647};
      return jaguar::MakeIntLit(
          kInteresting[rng_.PickIndex(sizeof(kInteresting) / sizeof(int64_t))]);
    }
    return jaguar::MakeIntLit(rng_.NextInRange(-32, 32));
  }

  // A small nonzero divisor (keeps most seeds trap-free; traps still possible via variables).
  ExprPtr NonZeroDivisor(Type t) {
    // No power-of-two divisors: strength reduction of division stays a mutation-only
    // trigger (the @P2 skeleton holes provide them).
    static const int64_t kDivisors[] = {1, 3, 5, 7, 9, 11, -3, -5, 100};
    const int64_t d = kDivisors[rng_.PickIndex(sizeof(kDivisors) / sizeof(int64_t))];
    return t.IsLong() ? jaguar::MakeLongLit(d) : jaguar::MakeIntLit(d);
  }

  ExprPtr VarOrLiteral(Type t) {
    auto vars = VisibleVars(t, /*need_mutable=*/false);
    if (!vars.empty() && rng_.Chance(3, 5)) {
      return jaguar::MakeVarRef(vars[rng_.PickIndex(vars.size())]->name);
    }
    return LiteralOf(t);
  }

  // In-bounds read of a random int array element, if any array is visible.
  ExprPtr MaybeArrayRead() {
    auto arrays = VisibleVars(Type::ArrayOf(TypeKind::kInt), false);
    if (arrays.empty()) {
      return nullptr;
    }
    return jaguar::MakeIndex(jaguar::MakeVarRef(arrays[rng_.PickIndex(arrays.size())]->name),
                             GenIndexExpr());
  }

  // An index expression guaranteed in [0, kArrayLen).
  ExprPtr GenIndexExpr() {
    auto nonneg = NonNegVars();
    if (!nonneg.empty() && rng_.FlipCoin()) {
      return jaguar::MakeBinary(BinOp::kRem,
                                jaguar::MakeVarRef(nonneg[rng_.PickIndex(nonneg.size())]->name),
                                jaguar::MakeIntLit(kArrayLen));
    }
    return jaguar::MakeIntLit(rng_.NextInt(0, kArrayLen - 1));
  }

  ExprPtr GenCallTo(int func_index) {
    const FuncDecl& callee = *program_.functions[static_cast<size_t>(func_index)];
    std::vector<ExprPtr> args;
    for (const auto& p : callee.params) {
      args.push_back(GenExpr(p.type, 1));
    }
    return jaguar::MakeCall(callee.name, std::move(args));
  }

  ExprPtr GenNumeric(Type t, int depth) {
    switch (rng_.NextInt(0, 9)) {
      case 0:
      case 1: {
        BinOp op;
        switch (rng_.NextInt(0, 4)) {
          case 0: op = BinOp::kAdd; break;
          case 1: op = BinOp::kSub; break;
          case 2: op = BinOp::kMul; break;
          case 3: op = BinOp::kBitXor; break;
          default: op = BinOp::kBitAnd; break;
        }
        return jaguar::MakeBinary(op, GenExpr(t, depth - 1), GenExpr(t, depth - 1));
      }
      case 2: {
        const BinOp op = rng_.FlipCoin() ? BinOp::kDiv : BinOp::kRem;
        return jaguar::MakeBinary(op, GenExpr(t, depth - 1), NonZeroDivisor(t));
      }
      case 3: {
        BinOp op;
        switch (rng_.NextInt(0, 2)) {
          case 0: op = BinOp::kShl; break;
          case 1: op = BinOp::kShr; break;
          default: op = BinOp::kUshr; break;
        }
        return jaguar::MakeBinary(op, GenExpr(t, depth - 1), GenExpr(Type::Int(), depth - 1));
      }
      case 4:
        return jaguar::MakeUnary(rng_.FlipCoin() ? UnOp::kNeg : UnOp::kBitNot,
                                 GenExpr(t, depth - 1));
      case 5:
        return jaguar::MakeTernary(GenExpr(Type::Bool(), depth - 1), GenExpr(t, depth - 1),
                                   GenExpr(t, depth - 1));
      case 6: {
        // Numeric cast (long <-> int).
        if (t.IsInt()) {
          return jaguar::MakeCast(Type::Int(), GenExpr(Type::Long(), depth - 1));
        }
        return jaguar::MakeCast(Type::Long(), GenExpr(Type::Int(), depth - 1));
      }
      case 7: {
        if (t.IsInt()) {
          ExprPtr read = MaybeArrayRead();
          if (read != nullptr) {
            return read;
          }
        }
        return VarOrLiteral(t);
      }
      case 8: {
        // Call to an already-defined function with a matching return type.
        for (int tries = 0; tries < 3 && callable_limit_ > 0; ++tries) {
          const int idx = rng_.NextInt(0, callable_limit_ - 1);
          if (program_.functions[static_cast<size_t>(idx)]->ret == t &&
              CallAffordable(idx)) {
            current_cost_ += est_cost_[static_cast<size_t>(idx)] * cost_multiplier_;
            return GenCallTo(idx);
          }
        }
        return VarOrLiteral(t);
      }
      default:
        return VarOrLiteral(t);
    }
  }

  ExprPtr GenBool(int depth) {
    switch (rng_.NextInt(0, 5)) {
      case 0:
      case 1: {
        const Type t = rng_.FlipCoin() ? Type::Int() : Type::Long();
        BinOp op;
        switch (rng_.NextInt(0, 5)) {
          case 0: op = BinOp::kLt; break;
          case 1: op = BinOp::kLe; break;
          case 2: op = BinOp::kGt; break;
          case 3: op = BinOp::kGe; break;
          case 4: op = BinOp::kEq; break;
          default: op = BinOp::kNe; break;
        }
        return jaguar::MakeBinary(op, GenExpr(t, depth - 1), GenExpr(t, depth - 1));
      }
      case 2:
        return jaguar::MakeBinary(rng_.FlipCoin() ? BinOp::kLogAnd : BinOp::kLogOr,
                                  GenExpr(Type::Bool(), depth - 1),
                                  GenExpr(Type::Bool(), depth - 1));
      case 3:
        return jaguar::MakeUnary(UnOp::kNot, GenExpr(Type::Bool(), depth - 1));
      default:
        return VarOrLiteral(Type::Bool());
    }
  }

  ExprPtr GenExpr(Type t, int depth) {
    if (depth <= 0) {
      return VarOrLiteral(t);
    }
    if (t.IsBool()) {
      return GenBool(depth);
    }
    JAG_CHECK(t.IsNumeric());
    return GenNumeric(t, depth);
  }

  // --- Statements -----------------------------------------------------------------------------

  std::vector<StmtPtr> GenBlockStmts(int depth) {
    std::vector<StmtPtr> out;
    const int count = rng_.NextInt(2, config_.max_block_stmts);
    scopes_.emplace_back();
    for (int i = 0; i < count; ++i) {
      out.push_back(GenStmt(depth));
    }
    scopes_.pop_back();
    return out;
  }

  // True if calling function `idx` here keeps the cost estimate acceptable.
  bool CallAffordable(int idx) const {
    return est_cost_[static_cast<size_t>(idx)] * cost_multiplier_ <= 20'000 &&
           current_cost_ <= 300'000;
  }

  StmtPtr GenStmt(int depth) {
    current_cost_ += 2 * cost_multiplier_;
    const int kind = depth > 0 ? rng_.NextInt(0, 11) : rng_.NextInt(0, 5);
    switch (kind) {
      case 0: {  // declaration
        if (rng_.Chance(1, 6)) {
          const std::string name = FreshName("a");
          scopes_.back().push_back(GenVar{name, Type::ArrayOf(TypeKind::kInt), true, false});
          return jaguar::MakeVarDecl(Type::ArrayOf(TypeKind::kInt), name,
                                     jaguar::MakeNewArray(TypeKind::kInt,
                                                          jaguar::MakeIntLit(kArrayLen)));
        }
        const Type t = RandomPrimitive();
        const std::string name = FreshName("v");
        // The initializer must not see the variable being declared.
        ExprPtr init = GenExpr(t, config_.max_expr_depth);
        scopes_.back().push_back(GenVar{name, t, true, false});
        return jaguar::MakeVarDecl(t, name, std::move(init));
      }
      case 1:
      case 2: {  // assignment (plain or compound)
        const Type t = RandomPrimitive();
        auto vars = VisibleVars(t, /*need_mutable=*/true);
        if (vars.empty()) {
          return GenStmt(0);
        }
        ExprPtr lv = jaguar::MakeVarRef(vars[rng_.PickIndex(vars.size())]->name);
        if (t.IsBool() || rng_.Chance(2, 5)) {
          return jaguar::MakeAssign(AssignOp::kAssign, std::move(lv),
                                    GenExpr(t, config_.max_expr_depth));
        }
        static const AssignOp kCompound[] = {AssignOp::kAddAssign, AssignOp::kSubAssign,
                                             AssignOp::kMulAssign, AssignOp::kXorAssign,
                                             AssignOp::kShlAssign, AssignOp::kOrAssign};
        return jaguar::MakeAssign(kCompound[rng_.PickIndex(6)], std::move(lv),
                                  GenExpr(t, 2));
      }
      case 3: {  // array element store
        auto arrays = VisibleVars(Type::ArrayOf(TypeKind::kInt), false);
        if (arrays.empty()) {
          return GenStmt(0);
        }
        ExprPtr lv = jaguar::MakeIndex(
            jaguar::MakeVarRef(arrays[rng_.PickIndex(arrays.size())]->name), GenIndexExpr());
        return jaguar::MakeAssign(rng_.FlipCoin() ? AssignOp::kAssign : AssignOp::kAddAssign,
                                  std::move(lv), GenExpr(Type::Int(), 2));
      }
      case 4:  // print a visible value
        return jaguar::MakePrint(VarOrLiteral(RandomPrimitive()));
      case 5: {  // call statement
        if (callable_limit_ == 0) {
          return GenStmt(0);
        }
        const int idx = rng_.NextInt(0, callable_limit_ - 1);
        if (!CallAffordable(idx)) {
          return GenStmt(0);
        }
        current_cost_ += est_cost_[static_cast<size_t>(idx)] * cost_multiplier_;
        return jaguar::MakeExprStmt(GenCallTo(idx));
      }
      case 6:
      case 7: {  // if / if-else
        ExprPtr cond = GenExpr(Type::Bool(), config_.max_expr_depth);
        StmtPtr then_s = jaguar::MakeBlock(GenBlockStmts(depth - 1));
        StmtPtr else_s;
        if (rng_.FlipCoin()) {
          else_s = jaguar::MakeBlock(GenBlockStmts(depth - 1));
        }
        return jaguar::MakeIf(std::move(cond), std::move(then_s), std::move(else_s));
      }
      case 8:
      case 9: {  // bounded counted for-loop (nesting capped at 2: depth-3 nests are left to
                 // the mutators, keeping the LICM deep-nest defect out of raw seeds)
        if (loop_nesting_ >= 2) {
          return GenStmt(0);
        }
        const std::string iv = FreshName("i");
        const int trip = rng_.NextInt(2, config_.max_loop_trip);
        scopes_.emplace_back();
        scopes_.back().push_back(GenVar{iv, Type::Int(), /*mutable_var=*/false,
                                        /*nonneg=*/true});
        cost_multiplier_ *= trip;
        ++loop_nesting_;
        StmtPtr body = jaguar::MakeBlock(GenBlockStmts(depth - 1));
        --loop_nesting_;
        cost_multiplier_ /= trip;
        scopes_.pop_back();
        return jaguar::MakeFor(
            jaguar::MakeVarDecl(Type::Int(), iv, jaguar::MakeIntLit(0)),
            jaguar::MakeBinary(BinOp::kLt, jaguar::MakeVarRef(iv), jaguar::MakeIntLit(trip)),
            jaguar::MakeAssign(AssignOp::kAddAssign, jaguar::MakeVarRef(iv),
                               jaguar::MakeIntLit(1)),
            std::move(body));
      }
      case 10: {  // switch with fall-through
        const int ncases = rng_.NextInt(2, config_.max_switch_cases);
        auto sw = jaguar::MakeBlock({});  // placeholder; build manually
        auto s = std::make_unique<Stmt>();
        s->kind = jaguar::StmtKind::kSwitch;
        s->exprs.push_back(jaguar::MakeBinary(
            BinOp::kRem,
            jaguar::MakeUnary(UnOp::kNeg,
                              jaguar::MakeUnary(UnOp::kNeg, GenExpr(Type::Int(), 2))),
            jaguar::MakeIntLit(ncases + 1)));
        for (int c = 0; c < ncases; ++c) {
          jaguar::SwitchArm arm;
          arm.value = c;
          scopes_.emplace_back();
          const int arm_stmts = rng_.NextInt(1, 2);
          for (int k = 0; k < arm_stmts; ++k) {
            arm.stmts.push_back(GenStmt(0));
          }
          scopes_.pop_back();
          if (rng_.Chance(7, 10)) {
            arm.stmts.push_back(jaguar::MakeBreak());
          }
          s->arms.push_back(std::move(arm));
        }
        if (rng_.FlipCoin()) {
          jaguar::SwitchArm def;
          def.is_default = true;
          scopes_.emplace_back();
          def.stmts.push_back(GenStmt(0));
          scopes_.pop_back();
          s->arms.push_back(std::move(def));
        }
        (void)sw;
        return s;
      }
      default: {  // try/catch around a risky division
        const Type t = Type::Int();
        auto vars = VisibleVars(t, /*need_mutable=*/true);
        if (vars.empty()) {
          return GenStmt(0);
        }
        const std::string target = vars[rng_.PickIndex(vars.size())]->name;
        std::vector<StmtPtr> risky;
        risky.push_back(jaguar::MakeAssign(
            AssignOp::kAssign, jaguar::MakeVarRef(target),
            jaguar::MakeBinary(BinOp::kDiv, GenExpr(t, 2), GenExpr(t, 1))));
        std::vector<StmtPtr> handler;
        handler.push_back(jaguar::MakeAssign(AssignOp::kAssign, jaguar::MakeVarRef(target),
                                             jaguar::MakeIntLit(rng_.NextInt(-9, 9))));
        return jaguar::MakeTryCatch(jaguar::MakeBlock(std::move(risky)),
                                    jaguar::MakeBlock(std::move(handler)));
      }
    }
  }

  const FuzzConfig& config_;
  Rng rng_;
  Program program_;
  std::vector<GenVar> globals_;
  std::vector<std::vector<GenVar>> scopes_;
  int callable_limit_ = 0;
  int next_name_ = 0;
  // Rough step-cost estimation: keeps the whole program's interpreted cost bounded so seeds
  // terminate quickly (the call graph is acyclic but loops would otherwise multiply call
  // costs exponentially across the function chain).
  std::vector<int64_t> est_cost_;     // per-call cost estimate of each generated function
  int64_t current_cost_ = 0;          // accumulated estimate of the function being generated
  int64_t cost_multiplier_ = 1;       // product of enclosing generated-loop trip counts
  int loop_nesting_ = 0;              // current generated-loop nesting depth
};

}  // namespace

Program GenerateProgram(const FuzzConfig& config, uint64_t seed) {
  Generator gen(config, seed);
  return gen.Generate();
}

}  // namespace artemis
