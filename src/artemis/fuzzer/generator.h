// JagFuzz — the seed-program generator (the JavaFuzzer substitute, DESIGN.md §1).
//
// Generates random, well-typed, *terminating* Jaguar programs. Like JavaFuzzer (paper §2.2),
// the generator intentionally avoids long loops: seeds alone rarely reach any compilation
// threshold, so their default JIT-trace is cold — which is exactly the situation JoNM's
// mutations then change. Termination is by construction: loops are bounded counted loops whose
// induction variable is not written in the body, and the call graph is acyclic.
//
// Every program prints all of its globals at the end of main, giving the differential oracle
// a rich observable state.

#ifndef SRC_ARTEMIS_FUZZER_GENERATOR_H_
#define SRC_ARTEMIS_FUZZER_GENERATOR_H_

#include <cstdint>

#include "src/jaguar/lang/ast.h"
#include "src/jaguar/support/rng.h"

namespace artemis {

struct FuzzConfig {
  int min_globals = 3;
  int max_globals = 7;
  int min_functions = 2;   // besides main
  int max_functions = 6;
  int max_params = 3;
  int max_block_stmts = 7;
  int max_stmt_depth = 3;  // nesting of if/for/while/switch
  int max_expr_depth = 3;
  int max_loop_trip = 8;   // small trips: seeds must stay cold (see file comment)
  int max_switch_cases = 10;
  // Chance (out of 100) that an int literal is drawn from the "interesting" set
  // (powers of two, shift-range values, negatives) rather than a small uniform value.
  int interesting_literal_pct = 30;
};

// Generates a checked program (jaguar::Check already run). Deterministic in (config, seed).
jaguar::Program GenerateProgram(const FuzzConfig& config, uint64_t seed);

}  // namespace artemis

#endif  // SRC_ARTEMIS_FUZZER_GENERATOR_H_
