#include "src/artemis/campaign/reducer.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/artemis/sandbox/sandbox.h"
#include "src/artemis/service/journal.h"
#include "src/jaguar/support/json.h"

namespace artemis {

using jaguar::BugId;

std::string ReportSignature(const BugReport& report) {
  // Harness deaths dedup on the death shape alone (signal name or watchdog-timeout): two
  // seeds segfaulting the harness are one underlying defect, a segfault and an abort are two.
  if (report.kind == DiscrepancyKind::kHarnessCrash ||
      report.kind == DiscrepancyKind::kHarnessHang) {
    return std::to_string(static_cast<int>(report.kind)) + "/harness:" + report.crash_kind;
  }
  // Triaged campaigns dedup on the bisection attribution: two discrepancies blamed on the
  // same stage (with the same invariant, if any) are one report even when their raw symptoms
  // differ, and vice versa — the paper's "same root cause" judgement, automated.
  if (report.triaged && report.triage.reproduced && report.triage.attributed()) {
    return "triage:" + report.triage.DedupKey();
  }
  std::vector<int> causes;
  for (BugId b : report.root_causes) {
    causes.push_back(static_cast<int>(b));
  }
  std::sort(causes.begin(), causes.end());
  std::string sig = std::to_string(static_cast<int>(report.kind)) + "/" +
                    std::to_string(static_cast<int>(report.crash_component)) + ":";
  for (int c : causes) {
    sig += std::to_string(c) + ",";
  }
  return sig;
}

void CampaignReducer::SeedFromExistingReports() {
  for (const BugReport& report : stats_->reports) {
    seen_signatures_.insert(ReportSignature(report));
    seen_causes_.insert(report.root_causes.begin(), report.root_causes.end());
  }
}

bool CampaignReducer::File(BugReport bug) {
  const std::string signature = ReportSignature(bug);
  if (seen_signatures_.count(signature) != 0) {
    return false;  // identical symptom — we would not file it again at all
  }
  seen_signatures_.insert(signature);
  bug.duplicate = !bug.root_causes.empty() &&
                  std::all_of(bug.root_causes.begin(), bug.root_causes.end(),
                              [&](BugId b) { return seen_causes_.count(b) != 0; });
  seen_causes_.insert(bug.root_causes.begin(), bug.root_causes.end());
  stats_->reports.push_back(std::move(bug));
  return true;
}

void CampaignReducer::Reduce(SeedShardResult&& shard) {
  CampaignStats& stats = *stats_;

  if (shard.quarantined) {
    // The child died (or hung) on every attempt; no validation results exist. File the death
    // itself as a first-class harness report so campaigns survive — and account — real
    // SIGSEGV/SIGABRT/OOM/hangs instead of dying with them.
    ++stats.seeds_run;
    ++stats.seeds_quarantined;
    // Each attempt at least started the seed's interpreter + JIT pair before dying.
    stats.vm_invocations += 2 * static_cast<uint64_t>(1 + shard.quarantine_retries);
    BugReport bug;
    bug.seed_id = shard.seed_id;
    bug.kind = shard.quarantine_hang ? DiscrepancyKind::kHarnessHang
                                     : DiscrepancyKind::kHarnessCrash;
    bug.crash_kind = shard.quarantine_hang ? "watchdog-timeout"
                                           : SignalName(shard.quarantine_signal);
    bug.detail = "harness child " +
                 std::string(shard.quarantine_hang ? "hung" : "died") + " (" + bug.crash_kind +
                 ") after " + std::to_string(1 + shard.quarantine_retries) + " attempt(s)";
    if (!shard.quarantine_breadcrumb.empty()) {
      bug.detail += "; last phases: " + shard.quarantine_breadcrumb;
    }
    bug.compile_mode = shard.compile.mode;
    bug.schedule_seed = shard.compile.schedule_seed;
    if (shard.chaos_fired) {
      bug.chaos = true;
      bug.chaos_seed = shard.chaos_seed;
    }
    File(std::move(bug));
    return;
  }
  if (track_clean_ && !shard.chaos_fired) {
    // Chained FNV over the canonical journal rendering — any behavioural difference in any
    // non-chaos shard (results, order, or count) changes CleanDigest().
    const std::string canon = ShardToJson(shard).Dump();
    stats.clean_fnv =
        jaguar::Fnv1a64(jaguar::Hex64(stats.clean_fnv) + "|" + canon);
    ++stats.clean_seeds;
  }

  const ValidationReport& report = shard.report;
  ++stats.seeds_run;
  // Every mutant costs one interpreter + one JIT invocation; the seed costs two more.
  stats.vm_invocations += 2;
  if (!report.seed_usable) {
    ++stats.seeds_discarded;
    return;
  }

  bool seed_found = false;
  // A seed that already diverges between interpretation and its default JIT-trace is a bug
  // the traditional approaches would also see; file it like the paper's duplicates of bugs
  // "that common users actually encounter in development".
  if (report.seed_self_discrepancy) {
    BugReport bug;
    bug.seed_id = shard.seed_id;
    bug.kind = report.seed_jit.status == jaguar::RunStatus::kVmCrash
                   ? DiscrepancyKind::kCrash
                   : DiscrepancyKind::kMisCompilation;
    bug.root_causes = report.seed_jit.fired_bugs;
    bug.crash_component = report.seed_jit.crash_component;
    bug.crash_kind = report.seed_jit.crash_kind;
    bug.detail = "seed diverges between interpreter and default JIT-trace";
    bug.compile_mode = shard.compile.mode;
    bug.schedule_seed = shard.compile.schedule_seed;
    if (shard.seed_triaged) {
      bug.triaged = true;
      bug.triage = shard.seed_triage;
      stats.vm_invocations += static_cast<uint64_t>(bug.triage.runs);
    }
    seed_found |= File(std::move(bug));
  }
  // Index the shard's triage attributions by mutant ordinal for the verdict loop below.
  std::map<size_t, const TriageReport*> triage_by_mutant;
  for (const auto& triaged : shard.triaged_mutants) {
    triage_by_mutant[triaged.mutant_index] = &triaged.report;
  }
  for (size_t m = 0; m < report.mutants.size(); ++m) {
    const auto& verdict = report.mutants[m];
    ++stats.mutants_generated;
    stats.vm_invocations += verdict.discarded && !verdict.non_neutral ? 1 : 2;
    stats.mutants_discarded += verdict.discarded ? 1 : 0;
    stats.mutants_non_neutral += verdict.non_neutral ? 1 : 0;
    stats.mutants_new_trace += verdict.explored_new_trace ? 1 : 0;
    if (verdict.kind == DiscrepancyKind::kNone) {
      continue;
    }
    seed_found = true;

    BugReport bug;
    bug.seed_id = shard.seed_id;
    bug.kind = verdict.kind;
    bug.root_causes = verdict.suspected_bugs;
    bug.crash_component = verdict.outcome.crash_component;
    bug.crash_kind = verdict.outcome.crash_kind;
    bug.detail = verdict.detail;
    bug.compile_mode = shard.compile.mode;
    bug.schedule_seed = shard.compile.schedule_seed;
    if (const auto it = triage_by_mutant.find(m); it != triage_by_mutant.end()) {
      bug.triaged = true;
      bug.triage = *it->second;
      stats.vm_invocations += static_cast<uint64_t>(bug.triage.runs);
    }
    // File at most one report per signature; later hits of an already-covered root cause
    // count as duplicates (reported but recognized as the same underlying defect).
    File(std::move(bug));
  }

  // Stress points: each is one JIT invocation of the already-run seed (no interpreter rerun —
  // the seed's interpretation is the shared reference).
  std::map<size_t, const TriageReport*> triage_by_stress;
  for (const auto& triaged : shard.triaged_stress) {
    triage_by_stress[triaged.stress_index] = &triaged.report;
  }
  for (size_t s = 0; s < report.stress_points.size(); ++s) {
    const auto& point = report.stress_points[s];
    ++stats.stress_points;
    stats.vm_invocations += 1;
    if (point.kind == DiscrepancyKind::kNone) {
      continue;
    }
    ++stats.stress_discrepancies;
    seed_found = true;

    BugReport bug;
    bug.seed_id = shard.seed_id;
    bug.kind = point.kind;
    bug.root_causes = point.suspected_bugs;
    bug.crash_component = point.outcome.crash_component;
    bug.crash_kind = point.outcome.crash_kind;
    bug.detail = point.detail;
    bug.stress = true;
    bug.stress_seed = point.stress_seed;
    bug.compile_mode = shard.compile.mode;
    bug.schedule_seed = shard.compile.schedule_seed;
    if (const auto it = triage_by_stress.find(s); it != triage_by_stress.end()) {
      bug.triaged = true;
      bug.triage = *it->second;
      stats.vm_invocations += static_cast<uint64_t>(bug.triage.runs);
    }
    File(std::move(bug));
  }
  stats.seeds_with_discrepancy += seed_found ? 1 : 0;
}

}  // namespace artemis
