// A minimal fork-join worker pool for embarrassingly-parallel campaign work.
//
// The campaign's unit of work (one seed: generate → validate → report) is independent of
// every other seed, so the pool only needs a dynamic index queue: workers atomically claim
// the next unprocessed index until the range is exhausted. Determinism is NOT the pool's
// job — callers make results thread-count-invariant by writing into slots indexed by work
// ordinal and reducing sequentially afterwards (see campaign.cc).

#ifndef SRC_ARTEMIS_CAMPAIGN_WORKER_POOL_H_
#define SRC_ARTEMIS_CAMPAIGN_WORKER_POOL_H_

#include <functional>

namespace artemis {

// Number of workers to use when the caller does not specify one: the hardware concurrency,
// never less than 1.
int DefaultWorkerCount();

// Runs task(i) exactly once for every i in [0, count), on up to num_threads workers
// (num_threads <= 1 degrades to a plain inline loop — no threads are spawned). Blocks until
// every task finished. Work is claimed dynamically (an atomic counter), so uneven per-task
// cost load-balances itself. If any task throws, the first exception (in completion order)
// is rethrown on the calling thread after all workers have drained.
void ParallelFor(int count, int num_threads, const std::function<void(int)>& task);

}  // namespace artemis

#endif  // SRC_ARTEMIS_CAMPAIGN_WORKER_POOL_H_
