#include "src/artemis/campaign/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace artemis {

int DefaultWorkerCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(int count, int num_threads, const std::function<void(int)>& task) {
  if (count <= 0) {
    return;
  }
  num_threads = std::min(num_threads, count);
  if (num_threads <= 1) {
    for (int i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }

  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Keep draining: sibling workers may be mid-task, and abandoning the claimed range
        // would leave slots unwritten for a caller that chooses to continue.
      }
    }
  };

  {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back(worker);
    }
  }  // jthread joins on destruction

  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace artemis
