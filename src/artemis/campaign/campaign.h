// Campaign driver: many seeds × one VM configuration, with the aggregate statistics the
// paper's evaluation reports (Tables 1, 2 and the §4.3 throughput measurement).
//
// Report bookkeeping mirrors the paper's process. Every discrepancy would be "filed" as a bug
// report; reports that share a root cause are duplicates of one another. Because our defects
// are injected, root causes are ground truth (fired-bug telemetry), so the campaign can
// compute exactly:
//   - Reported   — distinct (root-cause set, symptom) report signatures filed;
//   - Duplicate  — reports whose root cause was already covered by an earlier signature
//     (the paper: "two bugs for ART and five for OpenJ9 still stem from the same root causes");
//   - Confirmed  — distinct root-cause defects actually found ("developers can reproduce");
//   - the symptom split (mis-compilation / crash / performance) and the affected-component
//     histogram over crashes (Table 2).
// "Fixed" is not reproducible in a simulation (it depends on vendor action) and is reported
// as a dash by the benches.

#ifndef SRC_ARTEMIS_CAMPAIGN_CAMPAIGN_H_
#define SRC_ARTEMIS_CAMPAIGN_CAMPAIGN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/artemis/fuzzer/generator.h"
#include "src/artemis/sandbox/sandbox.h"
#include "src/artemis/triage/triage.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/vm/config.h"

namespace artemis {

struct CampaignParams {
  int num_seeds = 60;
  uint64_t base_seed = 20260707;
  FuzzConfig fuzz;
  ValidatorParams validator;
  // Step budget applied to every VM run in the campaign (keeps runaway mutants bounded, like
  // the paper's 2-minute cutoff).
  uint64_t step_budget = 60'000'000;
  // Worker threads the campaign shards its seeds across (0 → hardware concurrency). Seeds
  // are processed in parallel and reduced sequentially in seed order, so every thread count
  // produces bit-identical stats (wall_seconds aside). Validator hooks (tune_iteration /
  // on_mutant) force a single worker: they observe cross-seed state the pool cannot share.
  int num_threads = 0;
  // Pass-bisection triage (src/artemis/triage): every discrepancy is re-run with stages
  // disabled one at a time (verifier cross-referenced) inside its shard, and report
  // deduplication keys on the resulting attribution instead of raw output signatures.
  bool triage = false;
  TriageParams triage_params;
  // Process isolation (src/artemis/sandbox): kSandbox forks one child per seed shard, so a
  // genuine harness crash/hang quarantines that seed (retry-once-then-quarantine) instead of
  // killing the campaign. Sandboxed shards serialize over the journal codec, so outcomes are
  // bit-identical to in-process runs on clean seeds.
  IsolationMode isolation = IsolationMode::kInProcess;
  SandboxLimits sandbox;
  // Seeded chaos injection (vm/chaos.h): rate_pct percent of seeds arm a real fault in the
  // child. Requires kSandbox unless dry_run (the fault-free reference arm, which only
  // excludes the chaos seed set from CleanDigest()).
  ChaosParams chaos;
};

// One would-be bug report: a discrepancy with its ground-truth root causes.
struct BugReport {
  uint64_t seed_id = 0;
  DiscrepancyKind kind = DiscrepancyKind::kNone;
  std::vector<jaguar::BugId> root_causes;  // may be empty (cause outside the injected set)
  jaguar::VmComponent crash_component = jaguar::VmComponent::kNone;
  std::string crash_kind;
  std::string detail;
  // Stress-axis provenance: the discrepancy came from re-running the unmutated seed under
  // this stress seed (jit/stress) rather than from a JoNM mutant. Replaying the seed program
  // under vm.WithStressSeed(stress_seed) reproduces the exact compilation.
  bool stress = false;
  uint64_t stress_seed = 0;
  // Compile-axis provenance: the compile mode the revealing validation ran under, and (for
  // kScheduled) the seed-derived install schedule. Replaying the offending program under
  // vm.WithCompile({compile_mode, ..., schedule_seed}) re-enters the exact tier-switch
  // timeline; kSync for reports from historical synchronous campaigns.
  jaguar::CompileMode compile_mode = jaguar::CompileMode::kSync;
  uint64_t schedule_seed = 0;
  // Chaos provenance (sandbox campaigns with chaos injection): the report was filed for a
  // quarantined shard whose seed armed vm/chaos.h with this derived chaos seed. Replaying the
  // seed under vm.WithChaosSeed(chaos_seed) in a sandboxed shard reproduces the exact fault.
  bool chaos = false;
  uint64_t chaos_seed = 0;
  bool duplicate = false;  // a previous report already covered every root cause
  // Pass-bisection attribution (present when the campaign ran with params.triage). When
  // `triage.attributed()`, deduplication keys on triage.DedupKey() instead of the raw
  // (root-cause set, symptom) signature.
  bool triaged = false;
  TriageReport triage;
};

// Full field-wise equality (including the duplicate flag) — the determinism contract's unit.
bool operator==(const BugReport& a, const BugReport& b);
inline bool operator!=(const BugReport& a, const BugReport& b) { return !(a == b); }

struct CampaignStats {
  std::string vm_name;

  int seeds_run = 0;
  int seeds_discarded = 0;        // timed out / unusable
  int mutants_generated = 0;
  int mutants_discarded = 0;
  int mutants_non_neutral = 0;    // tool-defect guard firings (should be ~0)
  int mutants_new_trace = 0;      // mutants whose JIT-trace differed from the seed's
  int stress_points = 0;          // stress-seed runs of unmutated seeds (the second axis)
  int stress_discrepancies = 0;   // ... of which diverged from the default JIT-trace run

  int seeds_with_discrepancy = 0;
  // Sandbox campaigns: seeds whose child process died (or hung) on every attempt and were
  // quarantined. Each quarantined seed files exactly one harness-crash/hang report.
  int seeds_quarantined = 0;
  std::vector<BugReport> reports;

  // Table 1 rows.
  int Reported() const { return static_cast<int>(reports.size()); }
  int Duplicates() const;
  int Confirmed() const;  // distinct root-cause defects
  int MisCompilations() const;
  int Crashes() const;
  int PerformanceIssues() const;

  // Table 2: crash counts per affected component.
  std::map<jaguar::VmComponent, int> CrashComponents() const;

  std::set<jaguar::BugId> DistinctRootCauses() const;

  // §4.3 throughput.
  uint64_t vm_invocations = 0;  // engine runs (seeds + mutants, interp + JIT)
  double wall_seconds = 0.0;

  // Durable campaigns (service/durable.h): the number of journal segments these stats
  // accumulate over — 1 for an uninterrupted run, +1 per resume. wall_seconds spans *all*
  // segments (each resume adds its own elapsed time to the recorded prior total instead of
  // restarting the clock at zero), and vm_invocations is likewise the whole-campaign count
  // because the reduce folds journal-replayed shards together with freshly-run ones.
  int journal_segments = 1;

  // True when every deterministic field matches `other` — all counters, every report with
  // its duplicate flag, in order. wall_seconds (a measurement, not an outcome) and
  // journal_segments (a restart count, not an outcome) are excluded. This is the
  // thread-count- and restart-invariance contract RunCampaign/RunDurableCampaign guarantee.
  bool SameOutcome(const CampaignStats& other) const;

  // Stable 16-hex-digit digest over exactly the fields SameOutcome compares (every report
  // field included). Two stats objects have equal digests iff SameOutcome holds — the
  // cross-process form of the contract, which scripts/soak_check.sh compares between a
  // SIGKILLed-and-resumed campaign and an uninterrupted reference run.
  std::string OutcomeDigest() const;

  // Chaos-arm bookkeeping (campaigns with params.chaos.rate_pct > 0 only): a chained FNV over
  // the canonical shard JSON of every *non-chaos* seed, accumulated in reduce order. Both the
  // sandbox chaos arm and the in-process dry-run arm exclude the identical seed set (the
  // ChaosFires selection is pure in (chaos seed, seed id)), so equal CleanDigest() values
  // prove the injected faults perturbed nothing outside their own seeds. Excluded from
  // SameOutcome/OutcomeDigest: derived bookkeeping, not a campaign outcome.
  uint64_t clean_fnv = 0;
  int clean_seeds = 0;
  std::string CleanDigest() const;

  std::string ToString() const;
};

// Runs the campaign: seeds sharded across params.num_threads workers (each seed is a pure
// function of its ordinal — see shard.h), then reduced sequentially in seed order, so the
// returned stats are bit-identical for every thread count.
CampaignStats RunCampaign(const jaguar::VmConfig& vm_config, const CampaignParams& params);

}  // namespace artemis

#endif  // SRC_ARTEMIS_CAMPAIGN_CAMPAIGN_H_
