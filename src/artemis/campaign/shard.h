// Deterministic seed sharding — the campaign's parallel unit of work.
//
// Each seed of a campaign is processed by a pure function of (vm config, params, ordinal):
// the seed id is base_seed + ordinal, its RNG stream is derived from the seed id alone
// (splitmix-style golden-ratio multiply), and validation touches no state shared with other
// seeds. Shards can therefore run on any worker, in any order, on any number of threads, and
// still produce bit-identical per-seed results — the contract the campaign's sequential
// reduce (campaign.cc) turns into thread-count-invariant CampaignStats.

#ifndef SRC_ARTEMIS_CAMPAIGN_SHARD_H_
#define SRC_ARTEMIS_CAMPAIGN_SHARD_H_

#include <cstdint>

#include "src/artemis/campaign/campaign.h"

namespace artemis {

// The per-seed RNG stream: self-contained derivation from the seed id, shared by the
// sequential and parallel paths (and by anyone replaying a single seed from a report).
jaguar::Rng SeedRngFor(uint64_t seed_id);

// One fully-processed seed, ready for the ordered reduce.
struct SeedShardResult {
  uint64_t seed_id = 0;
  ValidationReport report;

  // The compile config the validation ran under (per-seed schedule_seed already derived);
  // the reducer stamps it onto every report filed from this shard as replay provenance.
  jaguar::CompileConfig compile;

  // Triage attributions (campaign params.triage only), produced inside the shard so the
  // parallel path stays deterministic: one entry per discrepant mutant, keyed by its index
  // in report.mutants, plus the seed's own self-discrepancy triage when applicable.
  struct TriagedMutant {
    size_t mutant_index = 0;
    TriageReport report;
  };
  std::vector<TriagedMutant> triaged_mutants;
  bool seed_triaged = false;
  TriageReport seed_triage;

  // Stress-axis attributions: one entry per discrepant stress point, keyed by its index in
  // report.stress_points. Triage re-runs the *seed* program with the point's stress seed
  // pinned, so the bisection replays the exact perturbed compilation.
  struct TriagedStress {
    size_t stress_index = 0;
    TriageReport report;
  };
  std::vector<TriagedStress> triaged_stress;

  // Process-isolation outcome (sandbox campaigns only; src/artemis/sandbox). A quarantined
  // shard carries no validation results: its child crashed or hung on every attempt, and the
  // reducer files a harness-crash/hang report from these fields instead. They ride the
  // journal so kill/resume replays the quarantine deterministically.
  bool quarantined = false;
  bool quarantine_hang = false;      // watchdog/RLIMIT_CPU hang (vs. a signal crash)
  int quarantine_signal = 0;         // terminating signal of the final attempt (crash only)
  int quarantine_retries = 0;        // attempts beyond the first (the retry-once policy: 1)
  std::string quarantine_breadcrumb; // the child's last flight-recorder phases

  // Chaos provenance: this seed fired ChaosFires. In the sandbox arm the injected fault
  // quarantines the shard; in the dry-run arm the shard runs normally but is excluded from
  // CampaignStats' clean digest, so both arms hash the identical seed set.
  bool chaos_fired = false;
  uint64_t chaos_seed = 0;
};

// Generates and validates the `ordinal`-th seed of a campaign. `vm_config` must already
// carry the campaign's step budget (RunCampaign prepares it once). Deterministic in its
// arguments; safe to call concurrently from multiple threads.
SeedShardResult RunSeedShard(const jaguar::VmConfig& vm_config, const CampaignParams& params,
                             int ordinal);

}  // namespace artemis

#endif  // SRC_ARTEMIS_CAMPAIGN_SHARD_H_
