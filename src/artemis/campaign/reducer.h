// The campaign's sequential reduce step, factored out of RunCampaign so every consumer of
// per-seed shard results folds them with the *same* dedup bookkeeping:
//   - RunCampaign (campaign.cc) reduces freshly-computed shards;
//   - the durable campaign (service/durable.h) reduces a mix of journal-replayed and
//     freshly-computed shards after a resume;
//   - the service loop (service/service.h) keeps one reducer alive across rounds so
//     report deduplication spans the whole lifetime of the evolving-corpus campaign.
//
// Reduction is order-sensitive (which report of a signature class gets filed, and which
// filed reports are flagged duplicate, depends on fold order), so all callers feed shards in
// ascending seed order; combined with per-seed determinism (shard.h) this makes the final
// CampaignStats identical regardless of thread count, process restarts, or journal replay.

#ifndef SRC_ARTEMIS_CAMPAIGN_REDUCER_H_
#define SRC_ARTEMIS_CAMPAIGN_REDUCER_H_

#include <set>
#include <string>

#include "src/artemis/campaign/shard.h"

namespace artemis {

// Deduplication signature of one report: triage attribution when available, otherwise
// sorted root causes + symptom (see campaign.h's report bookkeeping comment).
std::string ReportSignature(const BugReport& report);

class CampaignReducer {
 public:
  // Folds into `*stats`; the reducer does not own the stats object and callers may read it
  // between Reduce calls (the service loop snapshots mid-campaign).
  explicit CampaignReducer(CampaignStats* stats) : stats_(stats) {}

  // Rebuilds the dedup state from reports already present in the stats object — the resume
  // path: a journal segment restored stats->reports, and subsequent shards must dedup
  // against them exactly as the uninterrupted run would have.
  void SeedFromExistingReports();

  // Files `bug` unless its signature was already filed; returns whether it was filed.
  bool File(BugReport bug);

  // Chaos campaigns: accumulate stats->clean_fnv/clean_seeds over every non-chaos shard's
  // canonical journal JSON (in reduce order). Both the sandbox chaos arm and the in-process
  // dry-run arm then expose a comparable CampaignStats::CleanDigest().
  void TrackCleanDigest() { track_clean_ = true; }

  // Folds one seed's validation outcome into the stats (counters + report filing).
  void Reduce(SeedShardResult&& shard);

 private:
  CampaignStats* stats_;
  std::set<std::string> seen_signatures_;
  std::set<jaguar::BugId> seen_causes_;
  bool track_clean_ = false;
};

}  // namespace artemis

#endif  // SRC_ARTEMIS_CAMPAIGN_REDUCER_H_
