#include "src/artemis/campaign/shard.h"

namespace artemis {

jaguar::Rng SeedRngFor(uint64_t seed_id) {
  return jaguar::Rng(seed_id * 0x9E3779B97F4A7C15ULL + 1);
}

SeedShardResult RunSeedShard(const jaguar::VmConfig& vm_config, const CampaignParams& params,
                             int ordinal) {
  SeedShardResult result;
  result.seed_id = params.base_seed + static_cast<uint64_t>(ordinal);
  jaguar::Rng rng = SeedRngFor(result.seed_id);
  const jaguar::Program seed = GenerateProgram(params.fuzz, result.seed_id);
  result.report = Validate(seed, vm_config, params.validator, rng);
  return result;
}

}  // namespace artemis
