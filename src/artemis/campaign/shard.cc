#include "src/artemis/campaign/shard.h"

#include "src/jaguar/jit/concurrent/install_schedule.h"

namespace artemis {

jaguar::Rng SeedRngFor(uint64_t seed_id) {
  return jaguar::Rng(seed_id * 0x9E3779B97F4A7C15ULL + 1);
}

SeedShardResult RunSeedShard(const jaguar::VmConfig& vm_config, const CampaignParams& params,
                             int ordinal) {
  SeedShardResult result;
  result.seed_id = params.base_seed + static_cast<uint64_t>(ordinal);
  jaguar::Rng rng = SeedRngFor(result.seed_id);
  const jaguar::Program seed = GenerateProgram(params.fuzz, result.seed_id);
  ValidatorParams vparams = params.validator;
  if (vparams.stress_seeds > 0) {
    // Each seed samples its own stress stream, derived from (campaign base, seed id) alone —
    // shard ordering and thread placement cannot perturb it.
    vparams.stress_seed_base = jaguar::StressMix(params.base_seed, result.seed_id);
  }
  if (vparams.compile.mode == jaguar::CompileMode::kScheduled) {
    // Same contract for the install schedule: each seed defers its tier switches at points
    // derived from (campaign base, seed id) alone, so scheduled-mode campaigns are as
    // thread-count-invariant as sync ones.
    vparams.compile.schedule_seed = jaguar::DeriveScheduleSeed(params.base_seed, result.seed_id);
  }
  result.compile = vparams.compile;
  result.report = Validate(seed, vm_config, vparams, rng);

  // Triage inside the shard: TriageDiscrepancy is a pure function of (program, config,
  // params), so attributions computed here are as deterministic as the validation itself
  // and the reduce stays thread-count-invariant.
  if (params.triage && result.report.seed_usable) {
    // Pin the validation's compile config (with its per-seed install schedule) into every
    // triage, so bisection replays inside the compilation space that surfaced the symptom.
    TriageParams triage_params = params.triage_params;
    triage_params.compile = vparams.compile;
    if (result.report.seed_self_discrepancy) {
      result.seed_triage = TriageDiscrepancy(seed, vm_config, triage_params);
      result.seed_triaged = true;
    }
    for (size_t i = 0; i < result.report.mutants.size(); ++i) {
      const MutantVerdict& verdict = result.report.mutants[i];
      if (verdict.kind == DiscrepancyKind::kNone || !verdict.mutant_program) {
        continue;
      }
      result.triaged_mutants.push_back(
          {i, TriageDiscrepancy(*verdict.mutant_program, vm_config, triage_params)});
    }
    for (size_t i = 0; i < result.report.stress_points.size(); ++i) {
      const StressVerdict& point = result.report.stress_points[i];
      if (point.kind == DiscrepancyKind::kNone) {
        continue;
      }
      // Pin the point's stress seed so every triage re-run (baseline, bisection sweeps,
      // verifier cross-reference) replays the exact perturbed compilation that diverged.
      TriageParams stress_triage = triage_params;
      stress_triage.stress = vm_config.stress;
      stress_triage.stress.enabled = true;
      stress_triage.stress.seed = point.stress_seed;
      result.triaged_stress.push_back({i, TriageDiscrepancy(seed, vm_config, stress_triage)});
    }
  }
  return result;
}

}  // namespace artemis
