#include "src/artemis/campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/artemis/campaign/shard.h"
#include "src/artemis/campaign/worker_pool.h"
#include "src/jaguar/support/check.h"

namespace artemis {
namespace {

using jaguar::BugId;

// Deduplication signature: sorted root causes + symptom. Two discrepancies with the same
// signature are one report (the paper ensured "all reported bugs behave with different
// symptoms" before filing).
std::string SignatureOf(const BugReport& report) {
  // Triaged campaigns dedup on the bisection attribution: two discrepancies blamed on the
  // same stage (with the same invariant, if any) are one report even when their raw symptoms
  // differ, and vice versa — the paper's "same root cause" judgement, automated.
  if (report.triaged && report.triage.reproduced && report.triage.attributed()) {
    return "triage:" + report.triage.DedupKey();
  }
  std::vector<int> causes;
  for (BugId b : report.root_causes) {
    causes.push_back(static_cast<int>(b));
  }
  std::sort(causes.begin(), causes.end());
  std::string sig = std::to_string(static_cast<int>(report.kind)) + "/" +
                    std::to_string(static_cast<int>(report.crash_component)) + ":";
  for (int c : causes) {
    sig += std::to_string(c) + ",";
  }
  return sig;
}

// The sequential half of the campaign: folds one seed's validation report into the stats.
// Signature/root-cause dedup is order-sensitive, so the caller must reduce seeds in ordinal
// order — that (plus per-seed determinism, see shard.h) makes the final stats identical for
// every thread count.
struct CampaignReducer {
  CampaignStats& stats;
  std::set<std::string> seen_signatures;
  std::set<BugId> seen_causes;

  // Files `bug` unless its signature was already filed; returns whether it was filed.
  bool File(BugReport bug) {
    const std::string signature = SignatureOf(bug);
    if (seen_signatures.count(signature) != 0) {
      return false;  // identical symptom — we would not file it again at all
    }
    seen_signatures.insert(signature);
    bug.duplicate = !bug.root_causes.empty() &&
                    std::all_of(bug.root_causes.begin(), bug.root_causes.end(),
                                [&](BugId b) { return seen_causes.count(b) != 0; });
    seen_causes.insert(bug.root_causes.begin(), bug.root_causes.end());
    stats.reports.push_back(std::move(bug));
    return true;
  }

  void Reduce(SeedShardResult&& shard) {
    const ValidationReport& report = shard.report;
    ++stats.seeds_run;
    // Every mutant costs one interpreter + one JIT invocation; the seed costs two more.
    stats.vm_invocations += 2;
    if (!report.seed_usable) {
      ++stats.seeds_discarded;
      return;
    }

    bool seed_found = false;
    // A seed that already diverges between interpretation and its default JIT-trace is a bug
    // the traditional approaches would also see; file it like the paper's duplicates of bugs
    // "that common users actually encounter in development".
    if (report.seed_self_discrepancy) {
      BugReport bug;
      bug.seed_id = shard.seed_id;
      bug.kind = report.seed_jit.status == jaguar::RunStatus::kVmCrash
                     ? DiscrepancyKind::kCrash
                     : DiscrepancyKind::kMisCompilation;
      bug.root_causes = report.seed_jit.fired_bugs;
      bug.crash_component = report.seed_jit.crash_component;
      bug.crash_kind = report.seed_jit.crash_kind;
      bug.detail = "seed diverges between interpreter and default JIT-trace";
      if (shard.seed_triaged) {
        bug.triaged = true;
        bug.triage = shard.seed_triage;
        stats.vm_invocations += static_cast<uint64_t>(bug.triage.runs);
      }
      seed_found |= File(std::move(bug));
    }
    // Index the shard's triage attributions by mutant ordinal for the verdict loop below.
    std::map<size_t, const TriageReport*> triage_by_mutant;
    for (const auto& triaged : shard.triaged_mutants) {
      triage_by_mutant[triaged.mutant_index] = &triaged.report;
    }
    for (size_t m = 0; m < report.mutants.size(); ++m) {
      const auto& verdict = report.mutants[m];
      ++stats.mutants_generated;
      stats.vm_invocations += verdict.discarded && !verdict.non_neutral ? 1 : 2;
      stats.mutants_discarded += verdict.discarded ? 1 : 0;
      stats.mutants_non_neutral += verdict.non_neutral ? 1 : 0;
      stats.mutants_new_trace += verdict.explored_new_trace ? 1 : 0;
      if (verdict.kind == DiscrepancyKind::kNone) {
        continue;
      }
      seed_found = true;

      BugReport bug;
      bug.seed_id = shard.seed_id;
      bug.kind = verdict.kind;
      bug.root_causes = verdict.suspected_bugs;
      bug.crash_component = verdict.outcome.crash_component;
      bug.crash_kind = verdict.outcome.crash_kind;
      bug.detail = verdict.detail;
      if (const auto it = triage_by_mutant.find(m); it != triage_by_mutant.end()) {
        bug.triaged = true;
        bug.triage = *it->second;
        stats.vm_invocations += static_cast<uint64_t>(bug.triage.runs);
      }
      // File at most one report per signature; later hits of an already-covered root cause
      // count as duplicates (reported but recognized as the same underlying defect).
      File(std::move(bug));
    }
    stats.seeds_with_discrepancy += seed_found ? 1 : 0;
  }
};

}  // namespace

bool operator==(const BugReport& a, const BugReport& b) {
  return a.seed_id == b.seed_id && a.kind == b.kind && a.root_causes == b.root_causes &&
         a.crash_component == b.crash_component && a.crash_kind == b.crash_kind &&
         a.detail == b.detail && a.duplicate == b.duplicate && a.triaged == b.triaged &&
         a.triage == b.triage;
}

bool CampaignStats::SameOutcome(const CampaignStats& other) const {
  return vm_name == other.vm_name && seeds_run == other.seeds_run &&
         seeds_discarded == other.seeds_discarded &&
         mutants_generated == other.mutants_generated &&
         mutants_discarded == other.mutants_discarded &&
         mutants_non_neutral == other.mutants_non_neutral &&
         mutants_new_trace == other.mutants_new_trace &&
         seeds_with_discrepancy == other.seeds_with_discrepancy &&
         vm_invocations == other.vm_invocations && reports == other.reports;
}

int CampaignStats::Duplicates() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.duplicate ? 1 : 0;
  }
  return n;
}

std::set<BugId> CampaignStats::DistinctRootCauses() const {
  std::set<BugId> out;
  for (const auto& report : reports) {
    out.insert(report.root_causes.begin(), report.root_causes.end());
  }
  return out;
}

int CampaignStats::Confirmed() const { return static_cast<int>(DistinctRootCauses().size()); }

int CampaignStats::MisCompilations() const {
  // Type rows count every filed report, duplicates included, like the paper's Table 1
  // (whose type split sums to the Reported row).
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kMisCompilation ? 1 : 0;
  }
  return n;
}

int CampaignStats::Crashes() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kCrash ? 1 : 0;
  }
  return n;
}

int CampaignStats::PerformanceIssues() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kPerformance ? 1 : 0;
  }
  return n;
}

std::map<jaguar::VmComponent, int> CampaignStats::CrashComponents() const {
  std::map<jaguar::VmComponent, int> out;
  for (const auto& report : reports) {
    if (report.kind == DiscrepancyKind::kCrash) {
      ++out[report.crash_component];
    }
  }
  return out;
}

std::string CampaignStats::ToString() const {
  std::string out = "campaign[" + vm_name + "]: seeds=" + std::to_string(seeds_run) +
                    " (discarded " + std::to_string(seeds_discarded) + ")" +
                    " mutants=" + std::to_string(mutants_generated) + " (discarded " +
                    std::to_string(mutants_discarded) + ", non-neutral " +
                    std::to_string(mutants_non_neutral) + ", new-trace " +
                    std::to_string(mutants_new_trace) + ")\n";
  out += "  reported=" + std::to_string(Reported()) +
         " duplicate=" + std::to_string(Duplicates()) +
         " confirmed=" + std::to_string(Confirmed()) +
         " | mis-comp=" + std::to_string(MisCompilations()) +
         " crash=" + std::to_string(Crashes()) +
         " perf=" + std::to_string(PerformanceIssues()) + "\n";
  out += "  invocations=" + std::to_string(vm_invocations) + " in " +
         std::to_string(wall_seconds) + "s";
  if (wall_seconds > 0) {
    out += " (" + std::to_string(static_cast<double>(vm_invocations) / wall_seconds) +
           " invocations/s)";
  }
  return out;
}

CampaignStats RunCampaign(const jaguar::VmConfig& vm_config, const CampaignParams& params) {
  CampaignStats stats;
  stats.vm_name = vm_config.name;

  jaguar::VmConfig config = vm_config;
  config.step_budget = params.step_budget;

  // Guidance hooks are stateful observers across a seed's mutants and (for campaign-level
  // guidance) across seeds; running them from several workers would race. Degrade to one.
  const bool has_hooks = params.validator.tune_iteration || params.validator.on_mutant;
  const int threads =
      has_hooks ? 1 : (params.num_threads > 0 ? params.num_threads : DefaultWorkerCount());

  const auto start = std::chrono::steady_clock::now();

  // Map: every seed is processed independently into its own slot (shard.h's determinism
  // contract), on however many workers are available.
  std::vector<SeedShardResult> slots(static_cast<size_t>(std::max(params.num_seeds, 0)));
  ParallelFor(params.num_seeds, threads,
              [&](int s) { slots[static_cast<size_t>(s)] = RunSeedShard(config, params, s); });

  // Reduce: dedup bookkeeping is order-sensitive, so fold slots back in seed order.
  CampaignReducer reducer{stats};
  for (auto& slot : slots) {
    reducer.Reduce(std::move(slot));
  }

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return stats;
}

}  // namespace artemis
