#include "src/artemis/campaign/campaign.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "src/artemis/campaign/reducer.h"
#include "src/artemis/campaign/shard.h"
#include "src/artemis/campaign/worker_pool.h"
#include "src/artemis/sandbox/isolated.h"
#include "src/jaguar/observe/tracer.h"
#include "src/jaguar/support/check.h"
#include "src/jaguar/support/json.h"

namespace artemis {

using jaguar::BugId;

bool operator==(const BugReport& a, const BugReport& b) {
  return a.seed_id == b.seed_id && a.kind == b.kind && a.root_causes == b.root_causes &&
         a.crash_component == b.crash_component && a.crash_kind == b.crash_kind &&
         a.detail == b.detail && a.stress == b.stress && a.stress_seed == b.stress_seed &&
         a.compile_mode == b.compile_mode && a.schedule_seed == b.schedule_seed &&
         a.chaos == b.chaos && a.chaos_seed == b.chaos_seed &&
         a.duplicate == b.duplicate && a.triaged == b.triaged && a.triage == b.triage;
}

bool CampaignStats::SameOutcome(const CampaignStats& other) const {
  return vm_name == other.vm_name && seeds_run == other.seeds_run &&
         seeds_discarded == other.seeds_discarded &&
         mutants_generated == other.mutants_generated &&
         mutants_discarded == other.mutants_discarded &&
         mutants_non_neutral == other.mutants_non_neutral &&
         mutants_new_trace == other.mutants_new_trace &&
         stress_points == other.stress_points &&
         stress_discrepancies == other.stress_discrepancies &&
         seeds_with_discrepancy == other.seeds_with_discrepancy &&
         seeds_quarantined == other.seeds_quarantined &&
         vm_invocations == other.vm_invocations && reports == other.reports;
}

int CampaignStats::Duplicates() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.duplicate ? 1 : 0;
  }
  return n;
}

std::set<BugId> CampaignStats::DistinctRootCauses() const {
  std::set<BugId> out;
  for (const auto& report : reports) {
    out.insert(report.root_causes.begin(), report.root_causes.end());
  }
  return out;
}

int CampaignStats::Confirmed() const { return static_cast<int>(DistinctRootCauses().size()); }

int CampaignStats::MisCompilations() const {
  // Type rows count every filed report, duplicates included, like the paper's Table 1
  // (whose type split sums to the Reported row).
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kMisCompilation ? 1 : 0;
  }
  return n;
}

int CampaignStats::Crashes() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kCrash ? 1 : 0;
  }
  return n;
}

int CampaignStats::PerformanceIssues() const {
  int n = 0;
  for (const auto& report : reports) {
    n += report.kind == DiscrepancyKind::kPerformance ? 1 : 0;
  }
  return n;
}

std::map<jaguar::VmComponent, int> CampaignStats::CrashComponents() const {
  std::map<jaguar::VmComponent, int> out;
  for (const auto& report : reports) {
    if (report.kind == DiscrepancyKind::kCrash) {
      ++out[report.crash_component];
    }
  }
  return out;
}

std::string CampaignStats::OutcomeDigest() const {
  // Field-complete canonical rendering of everything SameOutcome (and BugReport::operator==)
  // compares; any divergence in any compared field changes the digest.
  std::string canon = vm_name + "|" + std::to_string(seeds_run) + "|" +
                      std::to_string(seeds_discarded) + "|" + std::to_string(mutants_generated) +
                      "|" + std::to_string(mutants_discarded) + "|" +
                      std::to_string(mutants_non_neutral) + "|" +
                      std::to_string(mutants_new_trace) + "|" +
                      std::to_string(stress_points) + "|" +
                      std::to_string(stress_discrepancies) + "|" +
                      std::to_string(seeds_with_discrepancy) + "|" +
                      std::to_string(vm_invocations) + "\n";
  for (const BugReport& r : reports) {
    canon += std::to_string(r.seed_id) + "|" + std::to_string(static_cast<int>(r.kind)) + "|";
    for (BugId b : r.root_causes) {
      canon += std::to_string(static_cast<int>(b)) + ",";
    }
    canon += "|" + std::to_string(static_cast<int>(r.crash_component)) + "|" + r.crash_kind +
             "|" + r.detail + "|" + (r.stress ? "s" + std::to_string(r.stress_seed) : "-") +
             "|" +
             (r.compile_mode != jaguar::CompileMode::kSync
                  ? std::string(jaguar::CompileModeName(r.compile_mode)) + ":" +
                        std::to_string(r.schedule_seed)
                  : "-") +
             "|" + (r.duplicate ? "D" : "-") + "|" + (r.triaged ? "T" : "-");
    if (r.chaos) {
      // Conditional (appended only for chaos reports) so historical digests are unchanged.
      canon += "|c" + std::to_string(r.chaos_seed);
    }
    if (r.triaged) {
      canon += "|" + std::string(r.triage.reproduced ? "r" : "-") +
               std::to_string(static_cast<int>(r.triage.kind)) + "|" + r.triage.stage + "|" +
               r.triage.partner + "|" + r.triage.invariant + "|" + r.triage.invariant_stage +
               "|";
      for (const std::string& c : r.triage.candidates) {
        canon += c + ",";
      }
      canon += "|" + r.triage.detail + "|" + std::to_string(r.triage.runs);
    }
    canon += "\n";
  }
  if (seeds_quarantined > 0) {
    // Conditional trailing segment: non-sandbox campaigns (and sandbox runs with no
    // quarantines) keep their historical digests bit-identical.
    canon += "q" + std::to_string(seeds_quarantined) + "\n";
  }
  return jaguar::Hex64(jaguar::Fnv1a64(canon));
}

std::string CampaignStats::CleanDigest() const {
  return jaguar::Hex64(
      jaguar::Fnv1a64(std::to_string(clean_seeds) + "|" + jaguar::Hex64(clean_fnv)));
}

std::string CampaignStats::ToString() const {
  std::string out = "campaign[" + vm_name + "]: seeds=" + std::to_string(seeds_run) +
                    " (discarded " + std::to_string(seeds_discarded) + ")" +
                    " mutants=" + std::to_string(mutants_generated) + " (discarded " +
                    std::to_string(mutants_discarded) + ", non-neutral " +
                    std::to_string(mutants_non_neutral) + ", new-trace " +
                    std::to_string(mutants_new_trace) + ")\n";
  if (stress_points > 0) {
    out += "  stress-points=" + std::to_string(stress_points) +
           " stress-discrepancies=" + std::to_string(stress_discrepancies) + "\n";
  }
  if (seeds_quarantined > 0) {
    out += "  quarantined=" + std::to_string(seeds_quarantined) + "\n";
  }
  out += "  reported=" + std::to_string(Reported()) +
         " duplicate=" + std::to_string(Duplicates()) +
         " confirmed=" + std::to_string(Confirmed()) +
         " | mis-comp=" + std::to_string(MisCompilations()) +
         " crash=" + std::to_string(Crashes()) +
         " perf=" + std::to_string(PerformanceIssues()) + "\n";
  out += "  invocations=" + std::to_string(vm_invocations) + " in " +
         std::to_string(wall_seconds) + "s";
  if (wall_seconds > 0) {
    out += " (" + std::to_string(static_cast<double>(vm_invocations) / wall_seconds) +
           " invocations/s)";
  }
  if (journal_segments > 1) {
    // Resumed campaigns accumulate: both totals span every journal segment, not just the
    // final process (satisfying the durable-campaign accounting contract).
    out += " across " + std::to_string(journal_segments) + " journal segments";
  }
  return out;
}

CampaignStats RunCampaign(const jaguar::VmConfig& vm_config, const CampaignParams& params) {
  CampaignStats stats;
  stats.vm_name = vm_config.name;

  jaguar::VmConfig config = vm_config;
  config.step_budget = params.step_budget;

  if (params.chaos.rate_pct > 0 && !params.chaos.dry_run &&
      params.isolation != IsolationMode::kSandbox) {
    // Injected faults are real SIGSEGV/abort/hangs; in-process they would kill the campaign.
    throw std::runtime_error("chaos injection requires --isolation sandbox (or --chaos-dry-run)");
  }

  // Guidance hooks are stateful observers across a seed's mutants and (for campaign-level
  // guidance) across seeds; running them from several workers would race. Degrade to one.
  const bool has_hooks = params.validator.tune_iteration || params.validator.on_mutant;
  const int threads =
      has_hooks ? 1 : (params.num_threads > 0 ? params.num_threads : DefaultWorkerCount());

  const auto start = std::chrono::steady_clock::now();

  // One executor (and one watchdog thread) serves every worker; nullptr keeps the historical
  // in-process path byte-for-byte.
  std::unique_ptr<SandboxExecutor> executor;
  if (params.isolation == IsolationMode::kSandbox) {
    executor = std::make_unique<SandboxExecutor>(params.sandbox, vm_config.observer);
  }

  // Map: every seed is processed independently into its own slot (shard.h's determinism
  // contract), on however many workers are available.
  std::vector<SeedShardResult> slots(static_cast<size_t>(std::max(params.num_seeds, 0)));
  ParallelFor(params.num_seeds, threads, [&](int s) {
    slots[static_cast<size_t>(s)] = RunSeedShardIsolated(config, params, s, executor.get());
  });

  // Reduce: dedup bookkeeping is order-sensitive, so fold slots back in seed order.
  CampaignReducer reducer{&stats};
  if (params.chaos.rate_pct > 0) {
    reducer.TrackCleanDigest();
  }
  for (auto& slot : slots) {
    reducer.Reduce(std::move(slot));
  }

  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Campaign-level metrics: the per-run VM/JIT series accumulated on the workers already
  // (each Vm flushes into the shared registry); here we add the campaign aggregates.
  if (vm_config.observer != nullptr && vm_config.observer->metrics != nullptr) {
    jaguar::observe::MetricsRegistry* metrics = vm_config.observer->metrics;
    const jaguar::observe::Labels vm_label = {{"vm", stats.vm_name}};
    metrics->GetCounter("artemis_campaigns_total", "Completed campaigns", vm_label)->Inc();
    metrics->GetCounter("artemis_campaign_seeds_total", "Seed programs run", vm_label)
        ->Inc(static_cast<uint64_t>(stats.seeds_run));
    metrics->GetCounter("artemis_campaign_mutants_total", "Mutants generated", vm_label)
        ->Inc(static_cast<uint64_t>(stats.mutants_generated));
    metrics->GetCounter("artemis_campaign_reports_total", "Discrepancy reports filed", vm_label)
        ->Inc(static_cast<uint64_t>(stats.Reported()));
    metrics
        ->GetCounter("artemis_campaign_vm_invocations_total", "VM invocations consumed",
                     vm_label)
        ->Inc(stats.vm_invocations);
    metrics
        ->GetGauge("artemis_campaign_last_wall_seconds", "Wall-clock time of the last campaign",
                   vm_label)
        ->Set(stats.wall_seconds);
    if (stats.wall_seconds > 0) {
      metrics
          ->GetGauge("artemis_campaign_seeds_per_second",
                     "Seed throughput of the last campaign", vm_label)
          ->Set(static_cast<double>(stats.seeds_run) / stats.wall_seconds);
    }
    if (params.validator.stress_seeds > 0) {
      metrics
          ->GetCounter("artemis_stress_points_total",
                       "Stress-seed runs of unmutated seeds", vm_label)
          ->Inc(static_cast<uint64_t>(stats.stress_points));
      metrics
          ->GetCounter("artemis_stress_discrepancies_total",
                       "Discrepancies revealed by the stress axis", vm_label)
          ->Inc(static_cast<uint64_t>(stats.stress_discrepancies));
      metrics
          ->GetGauge("artemis_stress_seeds_per_entry",
                     "Stress seeds sampled per corpus entry", vm_label)
          ->Set(static_cast<double>(params.validator.stress_seeds));
    }
  }
  return stats;
}

}  // namespace artemis
