// Table 1 — statistics of reported JIT-compiler bugs, per validated VM.
//
// The paper reports, per JVM: Reported / Duplicate / Confirmed / Fixed, plus the split into
// mis-compilations, crashes, and performance issues. This bench runs Artemis campaigns over
// the three simulated vendors and prints the same rows. Expected *shape* (paper vs here):
// every VM yields bugs; crashes outnumber mis-compilations; at most a performance issue or
// two. "Fixed" requires vendor action and is shown as "—"; the closest analogue is that every
// confirmed defect disappears when its injected fix (disabling the defect) is applied, which
// tests/jit_test.cc verifies defect by defect.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

void PrintTable1() {
  const int seeds = benchutil::SeedCount(30);
  std::printf("Table 1 — statistics of reported JIT-compiler bugs (%d seeds per VM, "
              "MAX_ITER=8; scale with JAG_BENCH_SEEDS)\n",
              seeds);
  benchutil::PrintRule();
  std::printf("%-28s %-10s %-10s %-8s\n", "", "HotSniff", "OpenJade", "Artree");
  benchutil::PrintRule();

  std::vector<artemis::CampaignStats> all;
  for (const auto& vm : jaguar::AllVendors()) {
    all.push_back(artemis::RunCampaign(vm, benchutil::PaperCampaignParams(vm, seeds)));
  }

  auto row = [&](const char* label, auto getter) {
    std::printf("%-28s", label);
    for (const auto& stats : all) {
      std::printf(" %-10d", getter(stats));
    }
    std::printf("\n");
  };
  row("Reported", [](const artemis::CampaignStats& s) { return s.Reported(); });
  row("Duplicate", [](const artemis::CampaignStats& s) { return s.Duplicates(); });
  row("Confirmed (root causes)", [](const artemis::CampaignStats& s) { return s.Confirmed(); });
  std::printf("%-28s %-10s %-10s %-8s\n", "Fixed", "—", "—", "—");
  benchutil::PrintRule();
  std::printf("Types of reported JIT-compiler bugs (unique reports)\n");
  row("Mis-compilation", [](const artemis::CampaignStats& s) { return s.MisCompilations(); });
  row("Crash", [](const artemis::CampaignStats& s) { return s.Crashes(); });
  row("Performance", [](const artemis::CampaignStats& s) { return s.PerformanceIssues(); });
  benchutil::PrintRule();
  for (const auto& stats : all) {
    std::printf("%s\n", stats.ToString().c_str());
    for (jaguar::BugId bug : stats.DistinctRootCauses()) {
      std::printf("  confirmed: %s\n", jaguar::BugName(bug));
    }
  }
  std::printf("\nPaper's Table 1 for reference: Reported 32/37/16, Confirmed 22/19/12; "
              "crashes 30/28/8 vs mis-compilations 1/9/8, one performance bug total.\n\n");
}

void BM_ValidateOneSeed(benchmark::State& state) {
  const jaguar::VmConfig vm = jaguar::HotSniffConfig();
  artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, 1);
  uint64_t seed_id = 1;
  for (auto _ : state) {
    params.base_seed = seed_id++;
    auto stats = artemis::RunCampaign(vm, params);
    benchmark::DoNotOptimize(stats.Reported());
  }
}
BENCHMARK(BM_ValidateOneSeed)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
