// Ablation — coverage-guided CSE vs the paper's stochastic sampling (§4.5 future work).
//
// The paper proposes recording compilation-space coverage (via the VM's logging options) and
// steering Artemis toward uncovered JIT compilations. This bench measures what that guidance
// buys on our substrate: with the same per-seed mutation budget, how much of the compilation
// space gets covered (methods driven to the top tier / seen deoptimizing), and how many
// discrepancy-triggering seeds each mode finds on a defective vendor.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/artemis/coverage/coverage.h"
#include "src/artemis/fuzzer/generator.h"
#include "src/jaguar/bytecode/compiler.h"

namespace {

struct ModeResult {
  double top_tier_coverage = 0;  // mean fraction of methods reaching the top tier
  double deopt_coverage = 0;     // mean fraction of methods observed deoptimizing
  int seeds_with_discrepancy = 0;
  int seeds = 0;
};

ModeResult RunMode(bool guided, int num_seeds) {
  jaguar::VmConfig vendor = jaguar::OpenJadeConfig();
  vendor.step_budget = 60'000'000;

  artemis::ValidatorParams params;
  params.max_iter = 8;
  params.jonm.synth.min_bound = 5'000;
  params.jonm.synth.max_bound = 10'000;

  artemis::FuzzConfig fuzz;
  ModeResult result;
  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed_id = 90'000 + static_cast<uint64_t>(s);
    jaguar::Program seed = artemis::GenerateProgram(fuzz, seed_id);
    const jaguar::BcProgram bc = jaguar::CompileProgram(seed);
    artemis::SpaceCoverage coverage;
    jaguar::Rng rng(seed_id * 17 + 5);

    artemis::ValidationReport report;
    if (guided) {
      report = artemis::GuidedValidate(seed, vendor, params, rng, &coverage);
    } else {
      artemis::ValidatorParams plain = params;
      plain.on_mutant = [&](const artemis::MutantVerdict& verdict) {
        if (verdict.outcome.full_trace != nullptr) {
          coverage.Observe(bc, *verdict.outcome.full_trace);
        }
      };
      jaguar::VmConfig traced = vendor;
      traced.record_full_trace = true;
      report = artemis::Validate(seed, traced, plain, rng);
    }
    if (!report.seed_usable) {
      continue;
    }
    ++result.seeds;
    result.top_tier_coverage += coverage.FractionAtLevel(bc, 2);
    result.deopt_coverage += coverage.FractionDeopted(bc);
    result.seeds_with_discrepancy += report.FoundAny() ? 1 : 0;
  }
  if (result.seeds > 0) {
    result.top_tier_coverage /= result.seeds;
    result.deopt_coverage /= result.seeds;
  }
  return result;
}

void PrintAblation() {
  const int seeds = benchutil::SeedCount(10);
  std::printf("Ablation — coverage-guided CSE vs stochastic JoNM (OpenJade, %d seeds, "
              "MAX_ITER=8)\n",
              seeds);
  benchutil::PrintRule();
  std::printf("%-12s %-22s %-18s %-10s\n", "mode", "top-tier coverage", "deopt coverage",
              "seeds-hit");
  const ModeResult stochastic = RunMode(false, seeds);
  std::printf("%-12s %-22.3f %-18.3f %d/%d\n", "stochastic", stochastic.top_tier_coverage,
              stochastic.deopt_coverage, stochastic.seeds_with_discrepancy, stochastic.seeds);
  const ModeResult guided = RunMode(true, seeds);
  std::printf("%-12s %-22.3f %-18.3f %d/%d\n", "guided", guided.top_tier_coverage,
              guided.deopt_coverage, guided.seeds_with_discrepancy, guided.seeds);
  benchutil::PrintRule();
  std::printf("Expected shape: guidance covers at least as much of the compilation space for\n"
              "the same budget — the §4.5 hypothesis that coverage feedback 'may help expose\n"
              "JIT-compiler bugs in early mutations'.\n\n");
}

void BM_Anchor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_Anchor)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
