// Table 2 — JIT-compiler components affected by the reported crashes.
//
// The paper breaks its HotSpot and OpenJ9 crash reports down by affected component (ideal
// loop optimization, GVN, ideal graph building, code generation, garbage collection, ...),
// highlighting that OpenJ9's crashes often surfaced in the garbage collector because the JIT
// had corrupted the heap. This bench runs crash-focused campaigns on the HotSpot-like and
// OpenJ9-like vendors and prints the same histogram. Expected shape: crashes spread over
// several components; loop optimization prominent on HotSniff; GC-attributed crashes appear
// on OpenJade (the kRceOffByOneHeapCorruption defect).

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_common.h"

namespace {

void PrintTable2() {
  const int seeds = benchutil::SeedCount(25);
  std::printf("Table 2 — components affected by JIT-compiler crashes (%d seeds per VM)\n",
              seeds);
  benchutil::PrintRule();

  for (const auto& vm : jaguar::AllVendors()) {
    if (vm.name == "Artree") {
      continue;  // the paper excludes JVMs with fewer than 10 crashes; ours mirrors that
    }
    artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, seeds);
    // Count every crash report (duplicates included) like the paper counts crash instances.
    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::map<jaguar::VmComponent, int> histogram;
    int crashes = 0;
    for (const auto& report : stats.reports) {
      if (report.kind == artemis::DiscrepancyKind::kCrash) {
        ++histogram[report.crash_component];
        ++crashes;
      }
    }
    std::printf("%s — %d crash reports\n", vm.name.c_str(), crashes);
    for (const auto& [component, count] : histogram) {
      std::printf("  %-28s %d\n", jaguar::ComponentName(component), count);
    }
    benchutil::PrintRule();
  }
  std::printf("Paper's shape: HotSpot crashes concentrated in Ideal Loop Optimization, GVN,\n"
              "and Ideal Graph Building; most OpenJ9 crashes surfaced in the Garbage\n"
              "Collector because the JIT corrupted the heap (§4.2).\n\n");
}

void BM_CrashDetectionCycle(benchmark::State& state) {
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
  artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, 2);
  for (auto _ : state) {
    auto stats = artemis::RunCampaign(vm, params);
    benchmark::DoNotOptimize(stats.Crashes());
  }
}
BENCHMARK(BM_CrashDetectionCycle)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  PrintTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
