// Ablation — contribution of the individual mutators (LI / SW / MI).
//
// The paper argues the three mutators exercise different JIT behaviour: LI drives OSR
// compilation of the synthesized loop alone, SW compiles the wrapped seed statement together
// with the loop, and MI drives method compilation plus flag speculation and deoptimization
// (§3.4, "the essential difference between LI and SW shows when they are applied to
// tracing-JITs"). This ablation runs the same campaign with each mutator class alone and with
// all three, and reports discrepancy-triggering seeds and distinct root causes per setting —
// the quantitative version of that argument.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

void RunSetting(const char* label, std::vector<artemis::MutatorKind> mutators, int seeds) {
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
  artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, seeds);
  params.validator.jonm.mutators = std::move(mutators);
  const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
  std::printf("%-10s seeds-with-discrepancy=%-4d reports=%-4d confirmed-causes=%-4d "
              "new-trace-mutants=%d/%d\n",
              label, stats.seeds_with_discrepancy, stats.Reported(), stats.Confirmed(),
              stats.mutants_new_trace, stats.mutants_generated);
}

void PrintAblation() {
  const int seeds = benchutil::SeedCount(12);
  std::printf("Ablation — mutator classes in isolation (OpenJade, %d seeds each)\n", seeds);
  benchutil::PrintRule();
  RunSetting("LI only", {artemis::MutatorKind::kLoopInserter}, seeds);
  RunSetting("SW only", {artemis::MutatorKind::kStatementWrapper}, seeds);
  RunSetting("MI only", {artemis::MutatorKind::kMethodInvocator}, seeds);
  RunSetting("all", {artemis::MutatorKind::kLoopInserter, artemis::MutatorKind::kStatementWrapper,
                     artemis::MutatorKind::kMethodInvocator},
             seeds);
  benchutil::PrintRule();
  std::printf("Expected shape: each class alone finds bugs; the union covers the most distinct"
              "\nroot causes (MI is the only one that induces flag speculation + deopt).\n\n");
}

void BM_MutateWithAllMutators(benchmark::State& state) {
  // Timing anchor so the binary reports something under --benchmark_filter as well.
  benchmark::DoNotOptimize(state.max_iterations);
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MutateWithAllMutators)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
