// Table 4 + §4.3 — the comparative study between CSE and the traditional approach.
//
// The paper's 7-day study on OpenJ9: for each JavaFuzzer seed, run it with its default
// JIT-trace, run it with every method force-compiled (-Xjit:count=0 — the traditional
// "JIT as a static compiler" oracle), then run 8 Artemis mutants with their default traces.
// Result: 42,559 seeds / 340,472 mutants; CSE flagged 154 seeds, the traditional approach 21,
// both 16 — i.e. ~90% of CSE's findings are invisible to the traditional approach.
//
// This bench reproduces the study on the OpenJ9-like vendor with the same per-seed protocol
// and prints the same columns. Expected shape: CSE ≫ Tra., with a small "Both" overlap.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "src/artemis/baseline/traditional.h"
#include "src/artemis/fuzzer/generator.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/compiler.h"

namespace {

struct StudyResult {
  int seeds = 0;
  int mutants = 0;
  int cse_seeds = 0;         // seeds for which a mutant diverged (the CSE oracle)
  int traditional_seeds = 0; // seeds for which count=0 diverged from the interpreted run
  int both = 0;
  uint64_t invocations = 0;
  double wall_seconds = 0;
};

StudyResult RunStudy(int num_seeds) {
  const jaguar::VmConfig vm = [] {
    jaguar::VmConfig v = jaguar::OpenJadeConfig();
    v.step_budget = 60'000'000;
    return v;
  }();

  artemis::ValidatorParams params;
  params.max_iter = 8;  // the paper's MAX_ITER
  params.jonm.synth.min_bound = 5'000;
  params.jonm.synth.max_bound = 10'000;

  artemis::FuzzConfig fuzz;
  StudyResult result;
  const auto start = std::chrono::steady_clock::now();

  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed_id = 50'000 + static_cast<uint64_t>(s);
    jaguar::Program seed = artemis::GenerateProgram(fuzz, seed_id);
    const jaguar::BcProgram bc = jaguar::CompileProgram(seed);

    // Traditional oracle: everything-compiled-before-first-call (-Xcomp) vs the interpreted
    // reference (-Xint); the default JIT-trace is recorded alongside for the study.
    const artemis::TraditionalResult traditional = artemis::TraditionalValidate(bc, vm);
    result.invocations += 3;
    if (!traditional.usable) {
      continue;  // the paper discards seeds that miss the 2-minute cutoff
    }

    // CSE: 8 mutants, each compared against the seed's default-trace run.
    jaguar::Rng rng(seed_id * 977 + 13);
    const artemis::ValidationReport report = artemis::Validate(seed, vm, params, rng);
    result.invocations += 2 + 2 * static_cast<uint64_t>(report.mutants.size());
    if (!report.seed_usable) {
      continue;
    }

    ++result.seeds;
    result.mutants += static_cast<int>(report.mutants.size());
    const bool cse_found = report.FoundAny();
    const bool tra_found = traditional.discrepancy;
    result.cse_seeds += cse_found ? 1 : 0;
    result.traditional_seeds += tra_found ? 1 : 0;
    result.both += (cse_found && tra_found) ? 1 : 0;
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

void PrintTable4() {
  const int seeds = benchutil::SeedCount(30);
  const StudyResult r = RunStudy(seeds);

  std::printf("Table 4 — comparative study between CSE and the traditional approach "
              "(OpenJade, %d seeds; scale with JAG_BENCH_SEEDS)\n",
              seeds);
  benchutil::PrintRule();
  std::printf("%-10s %-10s %-8s %-8s %-8s\n", "#Seeds", "#Mutants", "CSE", "Tra.", "Both");
  std::printf("%-10d %-10d %-8d %-8d %-8d\n", r.seeds, r.mutants, r.cse_seeds,
              r.traditional_seeds, r.both);
  benchutil::PrintRule();
  if (r.cse_seeds > 0) {
    std::printf("%.1f%% of CSE-flagged seeds are invisible to the traditional approach "
                "(paper: 89.6%%)\n",
                100.0 * (r.cse_seeds - r.both) / r.cse_seeds);
  }
  // §4.3 throughput: the paper reports >= 0.63 OpenJ9 invocations/second on 16 cores.
  std::printf("throughput: %llu VM invocations in %.1fs = %.2f invocations/s "
              "(paper: >= 0.63/s on real OpenJ9)\n\n",
              static_cast<unsigned long long>(r.invocations), r.wall_seconds,
              static_cast<double>(r.invocations) / r.wall_seconds);
}

void BM_TraditionalOracle(benchmark::State& state) {
  artemis::FuzzConfig fuzz;
  const jaguar::BcProgram bc =
      jaguar::CompileProgram(artemis::GenerateProgram(fuzz, 123));
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
  for (auto _ : state) {
    auto result = artemis::TraditionalValidate(bc, vm);
    benchmark::DoNotOptimize(result.discrepancy);
  }
}
BENCHMARK(BM_TraditionalOracle)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  PrintTable4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
