// Ablation — default vs. tiny compilation thresholds (§4.5 "Capabilities and limitations").
//
// The paper considered working around the loop-heavy throughput cost by setting smaller JIT
// compilation thresholds and smaller MAX, but found a week of that unproductive and offers a
// hypothesis: "this workaround increases the number of methods to be JIT-compiled, which
// considerably reduces the compilation space" — with everything hot, there is little
// interleaving left to explore. This ablation measures that effect directly: the same seeds
// and mutants run against (a) default thresholds with paper-sized loops and (b) tiny
// thresholds with small loops, comparing discrepancy yield and how many mutants actually
// reached a *new* JIT-trace.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

void PrintAblation() {
  const int seeds = benchutil::SeedCount(12);
  std::printf("Ablation — threshold choice (OpenJade-like VM, %d seeds each)\n", seeds);
  benchutil::PrintRule();

  {
    const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
    artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, seeds);
    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::printf("%-22s seeds-with-discrepancy=%-4d confirmed=%-4d new-trace=%d/%d\n",
                "default thresholds", stats.seeds_with_discrepancy, stats.Confirmed(),
                stats.mutants_new_trace, stats.mutants_generated);
  }
  {
    // The workaround: thresholds small enough that even seed code compiles immediately, with
    // matching small MIN/MAX for the synthesized loops.
    jaguar::VmConfig vm = jaguar::OpenJadeConfig();
    vm.name = "OpenJade-tiny";
    vm.tiers[0].invoke_threshold = 10;
    vm.tiers[1].invoke_threshold = 30;
    vm.tiers[1].osr_threshold = 50;
    artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, seeds);
    params.validator.jonm.synth.min_bound = 30;
    params.validator.jonm.synth.max_bound = 120;
    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::printf("%-22s seeds-with-discrepancy=%-4d confirmed=%-4d new-trace=%d/%d\n",
                "tiny thresholds", stats.seeds_with_discrepancy, stats.Confirmed(),
                stats.mutants_new_trace, stats.mutants_generated);
  }
  benchutil::PrintRule();
  std::printf("Expected shape (§4.5): with tiny thresholds everything is hot in seed and\n"
              "mutant alike, so fewer mutants reach a genuinely different compilation choice\n"
              "relative to their seed — the compilation space collapses.\n\n");
}

void BM_Anchor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_Anchor)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
