// Ablation — the statement-skeleton corpus's contribution to loop synthesis.
//
// §3.4 extracts 7,823 statement skeletons from JVM test suites so that synthesized loop
// bodies are diverse enough to "trigger varied optimization passes", while also noting the
// skeletons "are not a must" — a bare counting loop already changes the compilation choice.
// This ablation quantifies both halves of that claim: the same campaign with statement holes
// disabled (stmts_per_hole = 0 → loop bodies carry only the mutator's own placeholder
// content), with the default two skeletons per hole, and with four.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

void RunSetting(const char* label, int stmts_per_hole, int seeds) {
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
  artemis::CampaignParams params = benchutil::PaperCampaignParams(vm, seeds);
  params.validator.jonm.synth.stmts_per_hole = stmts_per_hole;
  const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
  std::printf("%-22s seeds-with-discrepancy=%-4d reports=%-4d confirmed-causes=%-4d "
              "new-trace-mutants=%d/%d\n",
              label, stats.seeds_with_discrepancy, stats.Reported(), stats.Confirmed(),
              stats.mutants_new_trace, stats.mutants_generated);
}

void PrintAblation() {
  const int seeds = benchutil::SeedCount(12);
  std::printf("Ablation — statement-skeleton corpus on/off (OpenJade, %d seeds each)\n", seeds);
  benchutil::PrintRule();
  RunSetting("no skeletons (0/hole)", 0, seeds);
  RunSetting("default (2/hole)", 2, seeds);
  RunSetting("rich (4/hole)", 4, seeds);
  benchutil::PrintRule();
  std::printf(
      "Expected shape (§3.4): bare counting loops already flip compilation choices\n"
      "(skeletons 'are not a must'), but skeleton-filled bodies exercise more passes\n"
      "and confirm at least as many distinct root causes.\n\n");
}

void BM_Anchor(benchmark::State& state) {
  benchmark::DoNotOptimize(state.max_iterations);
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_Anchor)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
