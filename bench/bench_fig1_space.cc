// Figure 1 — the compilation space of a simple program.
//
// The paper's Figure 1 shows a program with 4 method calls whose compilation space consists
// of 2^4 = 16 JIT compilation choices, every one of which must return 3 from main. This bench
// enumerates exactly that space with the forced compilation controller (the "ideal
// realization" of CSE, §3.2) and prints all 16 choices; it also times the enumeration and a
// single forced run.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/artemis/space/compilation_space.h"
#include "src/jaguar/bytecode/compiler.h"

namespace {

// The Figure 1 program: main → foo → { bar, baz }; every choice must print 3.
constexpr const char* kFigure1Program = R"(
int baz() { return 1; }
int bar() { return 2; }
int foo() { return bar() + baz(); }
int main() { print(foo()); return 0; }
)";

jaguar::VmConfig Vendor() { return jaguar::HotSniffConfig().WithoutBugs(); }

void PrintFigure1() {
  const jaguar::BcProgram bc = jaguar::CompileSource(kFigure1Program);
  const artemis::SpaceExploration space =
      artemis::ExploreCompilationSpace(bc, Vendor(), /*max_call_sites=*/4);

  std::printf("Figure 1 — compilation space of a 4-call program (VM: %s)\n", "HotSniff");
  benchutil::PrintRule();
  std::printf("%-4s", "#");
  for (const auto& site : space.call_sites) {
    std::printf("  %-10s", bc.functions[static_cast<size_t>(site.func)].name.c_str());
  }
  std::printf("  %-8s\n", "output");
  benchutil::PrintRule();
  for (const auto& point : space.points) {
    std::printf("%-4llu", static_cast<unsigned long long>(point.mask + 1));
    for (size_t i = 0; i < space.call_sites.size(); ++i) {
      std::printf("  %-10s", ((point.mask >> i) & 1) ? "compiled" : "interp");
    }
    std::string out = point.outcome.output;
    while (!out.empty() && out.back() == '\n') {
      out.pop_back();
    }
    std::printf("  %-8s\n", out.c_str());
  }
  benchutil::PrintRule();
  std::printf("call sites: %zu   points: %zu   all outputs agree: %s   (paper: all 16 print 3)\n\n",
              space.call_sites.size(), space.points.size(),
              space.all_agree ? "YES" : "NO — JIT BUG WITNESSED");
}

void BM_ExploreCompilationSpace16(benchmark::State& state) {
  const jaguar::BcProgram bc = jaguar::CompileSource(kFigure1Program);
  const jaguar::VmConfig vendor = Vendor();
  for (auto _ : state) {
    auto space = artemis::ExploreCompilationSpace(bc, vendor, 4);
    benchmark::DoNotOptimize(space.all_agree);
  }
}
BENCHMARK(BM_ExploreCompilationSpace16)->Unit(benchmark::kMillisecond);

void BM_SingleForcedRun(benchmark::State& state) {
  const jaguar::BcProgram bc = jaguar::CompileSource(kFigure1Program);
  const jaguar::VmConfig vendor = Vendor();
  auto sites = artemis::DiscoverCallSequence(bc, vendor, 4);
  std::map<artemis::CallSite, int> levels;
  for (const auto& site : sites) {
    levels[site] = 2;
  }
  for (auto _ : state) {
    auto outcome = artemis::RunWithForcedDecisions(bc, vendor, levels);
    benchmark::DoNotOptimize(outcome.status);
  }
}
BENCHMARK(BM_SingleForcedRun)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
