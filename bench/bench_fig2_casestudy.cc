// Figure 2 / §2.2 — the JDK-8288975 case study.
//
// The paper's running example: a JavaFuzzer seed whose methods are all interpreted until it
// exits, plus an Artemis MI mutation that (1) pre-invokes a method thousands of times under a
// control flag, driving C1→C2 compilation and a speculation on the flag, and (2) heats an
// inner loop into OSR compilation — after which HotSpot's Global Code Motion pass moves a
// memory-writing instruction into a deeper loop and the mutant prints a different value of
// the field than the seed.
//
// Our simulated HotSniff carries the same defect (kGcmStoreSinkIntoDeeperLoop); this bench
// runs a faithfully shaped seed/mutant pair and shows the divergence, the deoptimization on
// the flag flip, and the OSR compilation — then times the whole detection cycle.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/vm/engine.h"

namespace {

// The seed, shaped like Figure 2's: T.g() updates field l under a switch inside a loop;
// T.p() calls o() a handful of times; nothing ever reaches a compilation threshold.
constexpr const char* kSeed = R"(
boolean z = false;
int l = 0;
int[] k = new int[] {72, 3, 82, 21, 14, 10, 7, 5, 9, 2};

void g() {
  for (int mi = 0; mi < k.length; mi += 1) {
    int m = k[mi];
    switch ((m >>> 1) % 10 + 36) {
      case 36:
        l = m % 5;
        for (int w = 0; w < 3; w += 1) {
          l += 2;
        }
      case 40:
        break;
      case 41:
        k[1] = 9;
    }
  }
}
void o() { if (z) { return; } g(); }
void p() {
  for (int q = 2; q < 5; q += 1) {
    o();
  }
  print(l);
}
int main() { p(); p(); return 0; }
)";

// The mutant with the highlighted code of Figure 2: (1) an MI-style pre-invocation loop under
// the control flag z before o()'s real call (o()'s `if (z) return;` prologue is the paper's
// synthesized early return), which drives o() through tier-1 and tier-2 compilation with a
// speculation on z; and (2) the plain `for (w = -2967; w < 4342; w += 4);` loop inserted into
// g(), which OSR-compiles g()'s loop nest at the top tier — the compilation choice under
// which the buggy GCM pass moves the field store into the deeper loop.
constexpr const char* kMutant = R"(
boolean z = false;
int l = 0;
int[] k = new int[] {72, 3, 82, 21, 14, 10, 7, 5, 9, 2};

void g() {
  for (int mi = 0; mi < k.length; mi += 1) {
    int m = k[mi];
    switch ((m >>> 1) % 10 + 36) {
      case 36:
        l = m % 5;
        for (int w = -2967; w < 4342; w += 4) {
        }
        for (int w2 = 0; w2 < 3; w2 += 1) {
          l += 2;
        }
      case 40:
        break;
      case 41:
        k[1] = 9;
    }
  }
}
void o() { if (z) { return; } g(); }
void p() {
  for (int q = 2; q < 5; q += 1) {
    z = true;
    for (int u = 0; u < 9676; u += 1) {
      o();
    }
    z = false;
    o();
  }
  print(l);
}
int main() { p(); p(); return 0; }
)";

void PrintCaseStudy() {
  // The case study isolates the JDK-8288975 model: with the vendor's full defect set, a
  // second latent defect (the register-allocator one) can mask the GCM divergence on this
  // particular program — much like real JVM bugs can shadow one another.
  jaguar::VmConfig vm = jaguar::HotSniffConfig().WithoutBugs();
  vm.bugs = {jaguar::BugId::kGcmStoreSinkIntoDeeperLoop};

  const jaguar::BcProgram seed_bc = jaguar::CompileSource(kSeed);
  const jaguar::BcProgram mutant_bc = jaguar::CompileSource(kMutant);

  const jaguar::RunOutcome seed_run = jaguar::RunProgram(seed_bc, vm);
  const jaguar::RunOutcome mutant_run = jaguar::RunProgram(mutant_bc, vm);
  const jaguar::RunOutcome mutant_interp =
      jaguar::RunProgram(mutant_bc, jaguar::InterpreterOnlyConfig());

  std::printf("Figure 2 / JDK-8288975 case study (VM: %s, defect: GCM store sinking)\n",
              vm.name.c_str());
  benchutil::PrintRule();
  auto show = [](const char* label, const jaguar::RunOutcome& run) {
    std::string out = run.output;
    for (auto& c : out) {
      if (c == '\n') {
        c = ' ';
      }
    }
    std::printf("%-22s status=%-8s output=[%s]\n", label, RunStatusName(run.status),
                out.c_str());
    std::printf("%-22s %s\n", "", run.trace.ToString().c_str());
  };
  show("seed (default trace)", seed_run);
  show("mutant (default)", mutant_run);
  show("mutant (interp)", mutant_interp);
  benchutil::PrintRule();
  const bool neutral = mutant_interp.output == seed_run.output;
  const bool diverged = mutant_run.output != seed_run.output;
  std::printf("mutation is semantics-preserving under interpretation: %s\n",
              neutral ? "yes" : "NO (tool bug)");
  std::printf("mutant diverges under the JIT:                         %s%s\n",
              diverged ? "YES — mis-compilation detected" : "no",
              diverged ? " (the paper's JDK-8288975 behaviour)" : "");

  jaguar::VmConfig fixed = vm.WithoutBugs();
  const jaguar::RunOutcome fixed_run = jaguar::RunProgram(mutant_bc, fixed);
  std::printf("after the fix (defect disabled) the mutant agrees:     %s\n\n",
              fixed_run.output == seed_run.output ? "yes" : "NO");
}

void BM_CaseStudyDetection(benchmark::State& state) {
  jaguar::VmConfig vm = jaguar::HotSniffConfig().WithoutBugs();
  vm.bugs = {jaguar::BugId::kGcmStoreSinkIntoDeeperLoop};
  const jaguar::BcProgram seed_bc = jaguar::CompileSource(kSeed);
  const jaguar::BcProgram mutant_bc = jaguar::CompileSource(kMutant);
  for (auto _ : state) {
    const auto seed_run = jaguar::RunProgram(seed_bc, vm);
    const auto mutant_run = jaguar::RunProgram(mutant_bc, vm);
    benchmark::DoNotOptimize(seed_run.output == mutant_run.output);
  }
}
BENCHMARK(BM_CaseStudyDetection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintCaseStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
