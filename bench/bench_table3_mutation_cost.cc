// Table 3 — mutation cost of Artemis.
//
// The paper measures how long JoNM takes to derive one mutant: ~1.65 s "single-run" (booting
// the tool, parsing the seed, synthesizing) and ~0.16 s "large-scale" (the tool and its
// parsing framework stay resident and only mutate). We reproduce both modes: single-run =
// parse the seed source + type-check + mutate + print; large-scale = mutate a resident AST.
// Absolute numbers are far smaller (no JVM/Spoon boot), but the shape — large-scale an order
// of magnitude cheaper than single-run, with a cold first mutation — holds. Mean / median /
// min / max over N samples are printed like the paper's rows.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "src/artemis/fuzzer/generator.h"
#include "src/artemis/mutate/jonm.h"
#include "src/jaguar/lang/parser.h"
#include "src/jaguar/lang/printer.h"
#include "src/jaguar/lang/typecheck.h"

namespace {

struct Row {
  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
};

Row Summarize(std::vector<double> samples) {
  Row row;
  std::sort(samples.begin(), samples.end());
  row.min = samples.front();
  row.max = samples.back();
  row.median = samples[samples.size() / 2];
  for (double s : samples) {
    row.mean += s;
  }
  row.mean /= static_cast<double>(samples.size());
  return row;
}

artemis::JonmParams Params() {
  artemis::JonmParams params;
  params.synth.min_bound = 5'000;
  params.synth.max_bound = 10'000;
  return params;
}

void PrintTable3() {
  const int samples = benchutil::SeedCount(200);
  artemis::FuzzConfig fuzz;
  const artemis::JonmParams params = Params();

  // Pre-generate seed sources (mutation cost must not include seed generation).
  std::vector<std::string> sources;
  std::vector<jaguar::Program> parsed;
  for (int i = 0; i < samples; ++i) {
    jaguar::Program p = artemis::GenerateProgram(fuzz, 9'000 + static_cast<uint64_t>(i));
    sources.push_back(jaguar::PrintProgram(p));
    parsed.push_back(std::move(p));
  }

  using Clock = std::chrono::steady_clock;
  jaguar::Rng rng(42);

  // Single-run: parse + check + mutate + print, from source text every time (the paper's
  // "boot Artemis and Spoon for one seed" mode).
  std::vector<double> single;
  for (int i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    jaguar::Program seed = jaguar::ParseProgram(sources[static_cast<size_t>(i)]);
    jaguar::Check(seed);
    artemis::MutationResult mutation = artemis::JoNM(seed, params, rng);
    std::string out = jaguar::PrintProgram(mutation.mutant);
    benchmark::DoNotOptimize(out.data());
    single.push_back(std::chrono::duration<double, std::milli>(Clock::now() - start).count());
  }

  // Large-scale: the ASTs stay resident; only JoNM runs per mutant.
  std::vector<double> large;
  for (int i = 0; i < samples; ++i) {
    const auto start = Clock::now();
    artemis::MutationResult mutation = artemis::JoNM(parsed[static_cast<size_t>(i)], params, rng);
    benchmark::DoNotOptimize(mutation.mutant.functions.size());
    large.push_back(std::chrono::duration<double, std::milli>(Clock::now() - start).count());
  }

  const Row s = Summarize(single);
  const Row l = Summarize(large);
  std::printf("Table 3 — mutation cost of Artemis in milliseconds (%d samples)\n", samples);
  benchutil::PrintRule();
  std::printf("%-14s %10s %10s %10s %10s\n", "", "Mean", "Median", "Min", "Max");
  std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n", "Single-run", s.mean, s.median, s.min,
              s.max);
  std::printf("%-14s %10.3f %10.3f %10.3f %10.3f\n", "Large-scale", l.mean, l.median, l.min,
              l.max);
  benchutil::PrintRule();
  std::printf("Paper (seconds): single-run 1.65/1.68/0.76/2.01; large-scale "
              "0.16/0.16/0.06/2.19.\nShape preserved: large-scale ~10x cheaper than "
              "single-run (no parse), max dominated by the first (cold) mutation.\n\n");
}

void BM_JonmMutateResidentAst(benchmark::State& state) {
  artemis::FuzzConfig fuzz;
  jaguar::Program seed = artemis::GenerateProgram(fuzz, 77);
  const artemis::JonmParams params = Params();
  jaguar::Rng rng(1);
  for (auto _ : state) {
    auto mutation = artemis::JoNM(seed, params, rng);
    benchmark::DoNotOptimize(mutation.applied.size());
  }
}
BENCHMARK(BM_JonmMutateResidentAst)->Unit(benchmark::kMicrosecond);

void BM_JonmParseAndMutate(benchmark::State& state) {
  artemis::FuzzConfig fuzz;
  const std::string source = jaguar::PrintProgram(artemis::GenerateProgram(fuzz, 78));
  const artemis::JonmParams params = Params();
  jaguar::Rng rng(1);
  for (auto _ : state) {
    jaguar::Program seed = jaguar::ParseProgram(source);
    jaguar::Check(seed);
    auto mutation = artemis::JoNM(seed, params, rng);
    benchmark::DoNotOptimize(mutation.applied.size());
  }
}
BENCHMARK(BM_JonmParseAndMutate)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
