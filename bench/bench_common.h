// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (DESIGN.md §3) and also
// registers a google-benchmark timing of its core operation. Campaign sizes default to values
// that finish in a few minutes on a laptop; set JAG_BENCH_SEEDS to scale them up (the paper's
// own campaign ran for 7 days on 16 cores — shape, not scale, is what these reproduce).

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/artemis/campaign/campaign.h"
#include "src/jaguar/vm/config.h"

namespace benchutil {

inline int SeedCount(int default_count) {
  const char* env = std::getenv("JAG_BENCH_SEEDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return default_count;
}

// Campaign parameters matching the paper's §4.1 setup: MAX_ITER = 8; MIN/MAX = 5,000/10,000
// for the HotSpot/OpenJ9-like configs and 20,000/50,000 for the ART-like one; random STEP.
inline artemis::CampaignParams PaperCampaignParams(const jaguar::VmConfig& vm,
                                                   int num_seeds) {
  artemis::CampaignParams params;
  params.num_seeds = num_seeds;
  params.validator.max_iter = 8;
  if (vm.name == "Artree") {
    params.validator.jonm.synth.min_bound = 20'000;
    params.validator.jonm.synth.max_bound = 50'000;
  } else {
    params.validator.jonm.synth.min_bound = 5'000;
    params.validator.jonm.synth.max_bound = 10'000;
  }
  return params;
}

inline void PrintRule() { std::printf("%s\n", std::string(76, '-').c_str()); }

}  // namespace benchutil

#endif  // BENCH_BENCH_COMMON_H_
