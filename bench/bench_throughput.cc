// §4.3 — throughput of the Artemis pipeline.
//
// The paper measures ≥ 0.63 OpenJ9 invocations/second (one seed ≈ 15 s: 9 source→bytecode
// compilations and 10 JVM invocations) on 16 cores of a Threadripper. Our substrate is a
// simulated VM, so absolute throughput is far higher; this bench reports the same metrics —
// invocations/second and seconds per fully-processed seed — plus a breakdown of where the
// time goes (source compilation vs. VM execution), mirroring the paper's observation that
// "most CPU time is spent on source-bytecode compilation and executing the synthesized loops".

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "src/artemis/campaign/campaign.h"
#include "src/artemis/campaign/worker_pool.h"
#include "src/artemis/fuzzer/generator.h"
#include "src/artemis/mutate/jonm.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/compiler.h"

namespace {

// Campaign scaling: the same campaign at 1, 2, 4 and all-hardware threads. The stats are
// bit-identical across rows (the determinism contract); only invocations/s moves. Speedup
// saturates at the machine's actual core count — on a single-core host every row is ~1×.
void PrintCampaignScaling() {
  const int seeds = benchutil::SeedCount(24);
  artemis::CampaignParams params;
  params.num_seeds = seeds;
  params.validator.max_iter = 8;
  params.validator.jonm.synth.min_bound = 5'000;
  params.validator.jonm.synth.max_bound = 10'000;
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = artemis::DefaultWorkerCount();
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) == thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  std::printf("campaign scaling — %d seeds on %s, hardware threads: %d\n", seeds,
              vm.name.c_str(), hw);
  benchutil::PrintRule();
  std::printf("%-9s %-14s %-16s %-10s %-10s\n", "threads", "wall (s)", "invocations/s",
              "speedup", "reported");
  double base_rate = 0.0;
  for (int threads : thread_counts) {
    params.num_threads = threads;
    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    const double rate = static_cast<double>(stats.vm_invocations) / stats.wall_seconds;
    if (threads == 1) {
      base_rate = rate;
    }
    std::printf("%-9d %-14.2f %-16.1f %-10.2f %-10d\n", threads, stats.wall_seconds, rate,
                base_rate > 0 ? rate / base_rate : 1.0, stats.Reported());
  }
  benchutil::PrintRule();
  std::printf("\n");
}

void PrintThroughput() {
  const int seeds = benchutil::SeedCount(12);
  const jaguar::VmConfig vm = [] {
    jaguar::VmConfig v = jaguar::OpenJadeConfig();
    v.step_budget = 60'000'000;
    return v;
  }();
  artemis::ValidatorParams params;
  params.max_iter = 8;
  params.jonm.synth.min_bound = 5'000;
  params.jonm.synth.max_bound = 10'000;
  artemis::FuzzConfig fuzz;

  uint64_t invocations = 0;
  uint64_t mutants = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < seeds; ++s) {
    jaguar::Program seed = artemis::GenerateProgram(fuzz, 70'000 + static_cast<uint64_t>(s));
    jaguar::Rng rng(static_cast<uint64_t>(s) + 5);
    artemis::ValidationReport report = artemis::Validate(seed, vm, params, rng);
    invocations += 2 + 2 * static_cast<uint64_t>(report.mutants.size());
    mutants += report.mutants.size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::printf("§4.3 throughput — %d seeds, %llu mutants, MAX_ITER=8 (VM: %s)\n", seeds,
              static_cast<unsigned long long>(mutants), vm.name.c_str());
  benchutil::PrintRule();
  std::printf("VM invocations:        %llu\n", static_cast<unsigned long long>(invocations));
  std::printf("wall time:             %.2f s\n", secs);
  std::printf("invocations / second:  %.2f   (paper: >= 0.63 on real OpenJ9, 16 cores)\n",
              static_cast<double>(invocations) / secs);
  std::printf("seconds / seed:        %.2f   (paper: ~15 s per seed)\n\n",
              secs / static_cast<double>(seeds));
}

void BM_SourceToBytecode(benchmark::State& state) {
  artemis::FuzzConfig fuzz;
  jaguar::Program seed = artemis::GenerateProgram(fuzz, 321);
  for (auto _ : state) {
    jaguar::BcProgram bc = jaguar::CompileProgram(seed);
    benchmark::DoNotOptimize(bc.functions.size());
  }
}
BENCHMARK(BM_SourceToBytecode)->Unit(benchmark::kMicrosecond);

void BM_SeedDefaultTraceRun(benchmark::State& state) {
  artemis::FuzzConfig fuzz;
  const jaguar::BcProgram bc = jaguar::CompileProgram(artemis::GenerateProgram(fuzz, 321));
  const jaguar::VmConfig vm = jaguar::OpenJadeConfig();
  for (auto _ : state) {
    auto outcome = jaguar::RunProgram(bc, vm);
    benchmark::DoNotOptimize(outcome.steps);
  }
}
BENCHMARK(BM_SeedDefaultTraceRun)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintThroughput();
  PrintCampaignScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
