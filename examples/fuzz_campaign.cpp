// A miniature validation campaign from the command line.
//
//   ./fuzz_campaign [num_seeds] [vendor] [--threads N] [--verify[=LEVEL]] [--triage]
//
// vendor ∈ {hotsniff, openjade, artree} (default: all three). Prints a live-ish report of
// what Artemis finds — the CLI equivalent of the paper's testing campaign. Seeds are sharded
// across N worker threads (default: all hardware threads); the report is identical for every
// N — only the wall time changes.
//
// --verify runs the vendor with the IR/LIR invariant verifier enabled (LEVEL ∈ off|boundary|
// every-pass; bare --verify means every-pass), so invariant violations surface as crashes.
// --triage pass-bisects every discrepancy and dedups reports on the attribution key; each
// report then prints its "triage: <kind> -> <stage>" line.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/artemis/campaign/campaign.h"
#include "src/artemis/campaign/worker_pool.h"

namespace {

jaguar::VerifyLevel ParseVerifyLevel(const char* name) {
  if (std::strcmp(name, "off") == 0) {
    return jaguar::VerifyLevel::kOff;
  }
  if (std::strcmp(name, "boundary") == 0) {
    return jaguar::VerifyLevel::kBoundary;
  }
  if (std::strcmp(name, "every-pass") == 0) {
    return jaguar::VerifyLevel::kEveryPass;
  }
  std::fprintf(stderr, "unknown verify level '%s' (off|boundary|every-pass)\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 20;
  int threads = 0;  // 0 → hardware concurrency
  jaguar::VerifyLevel verify = jaguar::VerifyLevel::kOff;
  bool triage = false;
  const char* vendor_filter = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = jaguar::VerifyLevel::kEveryPass;
    } else if (std::strncmp(argv[i], "--verify=", 9) == 0) {
      verify = ParseVerifyLevel(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--triage") == 0) {
      triage = true;
    } else if (positional == 0) {
      seeds = std::atoi(argv[i]);
      ++positional;
    } else {
      vendor_filter = argv[i];
      ++positional;
    }
  }
  std::printf("campaign: %d seeds on %d worker thread(s)\n\n", seeds,
              threads > 0 ? threads : artemis::DefaultWorkerCount());

  bool ran_any = false;
  for (jaguar::VmConfig vm : jaguar::AllVendors()) {
    if (vendor_filter != nullptr) {
      std::string lower = vm.name;
      for (auto& c : lower) {
        c = static_cast<char>(std::tolower(c));
      }
      if (lower != vendor_filter) {
        continue;
      }
    }
    ran_any = true;
    vm.verify_level = verify;

    artemis::CampaignParams params;
    params.num_seeds = seeds;
    params.num_threads = threads;
    params.triage = triage;
    params.validator.max_iter = 8;
    if (vm.name == "Artree") {
      params.validator.jonm.synth.min_bound = 20'000;
      params.validator.jonm.synth.max_bound = 50'000;
    } else {
      params.validator.jonm.synth.min_bound = 5'000;
      params.validator.jonm.synth.max_bound = 10'000;
    }

    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::printf("%s\n", stats.ToString().c_str());
    for (const auto& report : stats.reports) {
      std::printf("  [%s]%s seed=%llu %s\n", DiscrepancyName(report.kind),
                  report.duplicate ? " (duplicate)" : "",
                  static_cast<unsigned long long>(report.seed_id), report.detail.c_str());
      for (jaguar::BugId bug : report.root_causes) {
        std::printf("      cause: %s\n", jaguar::BugName(bug));
      }
      if (report.triaged) {
        std::printf("      %s\n", report.triage.ToString().c_str());
      }
    }
    std::printf("\n");
  }
  if (!ran_any) {
    std::fprintf(stderr, "error: unknown vendor '%s' (expected hotsniff, openjade, or artree)\n",
                 vendor_filter);
    return 1;
  }
  return 0;
}
