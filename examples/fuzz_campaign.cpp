// A miniature validation campaign from the command line.
//
//   ./fuzz_campaign [num_seeds] [vendor] [--threads N] [--verify[=LEVEL]] [--triage]
//
// vendor ∈ {hotsniff, openjade, artree} (default: all three; also accepted via --vm NAME and
// --seeds N — the flag grammar is shared with the other drivers, see cli_common.h). Prints a
// live-ish report of what Artemis finds — the CLI equivalent of the paper's testing
// campaign. Seeds are sharded across N worker threads (default: all hardware threads); the
// report is identical for every N — only the wall time changes.
//
// --verify runs the vendor with the IR/LIR invariant verifier enabled (LEVEL ∈ off|boundary|
// every-pass; bare --verify means every-pass), so invariant violations surface as crashes.
// --triage pass-bisects every discrepancy and dedups reports on the attribution key; each
// report then prints its "triage: <kind> -> <stage>" line.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "examples/cli_common.h"
#include "src/artemis/campaign/campaign.h"
#include "src/artemis/campaign/worker_pool.h"

int main(int argc, char** argv) {
  cli::CommonOptions options = cli::ParseArgs(argc, argv);
  // Legacy positional grammar: [num_seeds] [vendor].
  size_t positional = 0;
  if (options.seeds < 0 && positional < options.positional.size()) {
    options.seeds = std::atoi(options.positional[positional++].c_str());
  }
  if (options.vm.empty() && positional < options.positional.size()) {
    options.vm = options.positional[positional++];
  }
  const int seeds = options.seeds >= 0 ? options.seeds : 20;

  std::printf("campaign: %d seeds on %d worker thread(s)\n\n", seeds,
              options.threads > 0 ? options.threads : artemis::DefaultWorkerCount());

  bool ran_any = false;
  for (jaguar::VmConfig vm : jaguar::AllVendors()) {
    if (!options.vm.empty() && cli::ToLower(vm.name) != options.vm) {
      continue;
    }
    ran_any = true;
    vm.verify_level = options.verify;

    artemis::CampaignParams params;
    params.num_seeds = seeds;
    params.num_threads = options.threads;
    params.triage = options.triage;
    params.validator.max_iter = 8;
    cli::ApplyPaperSynthBounds(vm.name, &params.validator);

    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::printf("%s\n", stats.ToString().c_str());
    for (const auto& report : stats.reports) {
      std::printf("  [%s]%s seed=%llu %s\n", DiscrepancyName(report.kind),
                  report.duplicate ? " (duplicate)" : "",
                  static_cast<unsigned long long>(report.seed_id), report.detail.c_str());
      for (jaguar::BugId bug : report.root_causes) {
        std::printf("      cause: %s\n", jaguar::BugName(bug));
      }
      if (report.triaged) {
        std::printf("      %s\n", report.triage.ToString().c_str());
      }
    }
    std::printf("\n");
  }
  if (!ran_any) {
    std::fprintf(stderr, "error: unknown vendor '%s' (expected hotsniff, openjade, or artree)\n",
                 options.vm.c_str());
    return 1;
  }
  return 0;
}
