// A miniature validation campaign from the command line.
//
//   ./fuzz_campaign [num_seeds] [vendor] [--threads N] [--verify[=LEVEL]] [--triage]
//                   [--stress-seeds K] [--compile-mode MODE] [--compile-threads N]
//                   [--trace[=LEVEL]] [--trace-out PATH]
//                   [--metrics-out PATH] [--bench-out PATH]
//
// vendor ∈ {hotsniff, openjade, artree} (default: all three; also accepted via --vm NAME and
// --seeds N — the flag grammar is shared with the other drivers, see cli_common.h). Prints a
// live-ish report of what Artemis finds — the CLI equivalent of the paper's testing
// campaign. Seeds are sharded across N worker threads (default: all hardware threads); the
// report is identical for every N — only the wall time changes.
//
// --verify runs the vendor with the IR/LIR invariant verifier enabled (LEVEL ∈ off|boundary|
// every-pass; bare --verify means every-pass), so invariant violations surface as crashes.
// --triage pass-bisects every discrepancy and dedups reports on the attribution key; each
// report then prints its "triage: <kind> -> <stage>" line.
// --stress-seeds K additionally re-runs every seed at K seeded stress points (perturbed pass
// sets/orders/thresholds/placements — the HotSpot StressGCM/StressLCM analogue), a second
// compilation-space axis orthogonal to JoNM's program mutations.
// --compile-mode scheduled explores the third axis: JIT requests run on background workers
// and installs land at deterministic per-seed points (one derived schedule seed per corpus
// seed), so discrepancies stay replayable. --compile-mode background free-runs for raw
// throughput; install timing then depends on the machine, so use it for benchmarking, not
// for report provenance. --compile-threads sizes the worker pool.
//
// Observability (src/jaguar/observe/): --metrics-out dumps the campaign's Prometheus
// registry, --trace-out the merged per-thread event rings as Chrome trace_event JSONL
// (--trace-out implies --trace=full unless a level was given explicitly). --bench-out writes
// BENCH_vm.json — the scripts/bench_check.sh performance summary: campaign throughput
// (seeds/s, VM invocations/s, JIT compiles/s), per-pass compile-time distribution
// (mean/p95 µs), and interpreter speed (MIPS) from a fixed hot-loop microbenchmark.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "examples/cli_common.h"
#include "src/artemis/campaign/campaign.h"
#include "src/artemis/campaign/worker_pool.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/lang/parser.h"
#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/observe/tracer.h"
#include "src/jaguar/support/json.h"
#include "src/jaguar/vm/engine.h"

namespace {

// Fixed interpreter-only hot loop (~5M VM cost units). MIPS = steps / wall-seconds / 1e6,
// using the deterministic step count as the instruction proxy so the metric only varies with
// the machine, never with the workload.
double InterpreterMips() {
  const char* source = R"(
    int main() {
      long acc = 0L;
      for (int i = 0; i < 2000; i++) {
        for (int j = 0; j < 500; j++) {
          acc += j - i;
        }
      }
      print(acc);
      return 0;
    }
  )";
  jaguar::Program program = jaguar::ParseProgram(source);
  jaguar::Check(program);
  const jaguar::BcProgram bytecode = jaguar::CompileProgram(program);
  const jaguar::VmConfig interp = jaguar::InterpreterOnlyConfig();
  // Warm-up run (page/cache effects), then the timed run.
  jaguar::RunProgram(bytecode, interp);
  const auto start = std::chrono::steady_clock::now();
  const jaguar::RunOutcome out = jaguar::RunProgram(bytecode, interp);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (out.status != jaguar::RunStatus::kOk || seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(out.steps) / seconds / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  cli::CommonOptions options = cli::ParseArgs(argc, argv);
  // Legacy positional grammar: [num_seeds] [vendor].
  size_t positional = 0;
  if (options.seeds < 0 && positional < options.positional.size()) {
    options.seeds = std::atoi(options.positional[positional++].c_str());
  }
  if (options.vm.empty() && positional < options.positional.size()) {
    options.vm = options.positional[positional++];
  }
  const int seeds = options.seeds >= 0 ? options.seeds : 20;

  // Observability sinks, shared by every vendor campaign in this invocation. A bare
  // --trace-out means the user wants events, so it implies --trace=full.
  jaguar::observe::TraceLevel trace = options.trace;
  if (!options.trace_out.empty() && !options.trace_given) {
    trace = jaguar::observe::TraceLevel::kFull;
  }
  const bool observing = trace != jaguar::observe::TraceLevel::kOff ||
                         !options.trace_out.empty() || !options.metrics_out.empty() ||
                         !options.bench_out.empty();
  jaguar::observe::MetricsRegistry registry;
  jaguar::observe::TraceHub hub;
  jaguar::observe::Observer observer;
  if (observing) {
    observer.metrics = &registry;
    if (trace != jaguar::observe::TraceLevel::kOff) {
      observer.hub = &hub;
    }
  }

  std::printf("campaign: %d seeds on %d worker thread(s)\n\n", seeds,
              options.threads > 0 ? options.threads : artemis::DefaultWorkerCount());

  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t total_seeds = 0;
  uint64_t total_invocations = 0;
  bool ran_any = false;
  for (jaguar::VmConfig vm : jaguar::AllVendors()) {
    if (!options.vm.empty() && cli::ToLower(vm.name) != options.vm) {
      continue;
    }
    ran_any = true;
    vm.verify_level = options.verify;
    if (observing) {
      vm.trace_level = trace;
      vm.observer = &observer;
    }

    artemis::CampaignParams params;
    params.num_seeds = seeds;
    params.num_threads = options.threads;
    params.triage = options.triage;
    params.validator.max_iter = 8;
    params.validator.stress_seeds = options.stress_seeds;
    params.validator.compile = cli::CompileOptionsOf(options);
    cli::ApplyPaperSynthBounds(vm.name, &params.validator);
    cli::ApplySandboxOptions(options, &params);

    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    total_seeds += static_cast<uint64_t>(stats.seeds_run);
    total_invocations += stats.vm_invocations;
    std::printf("%s\n", stats.ToString().c_str());
    for (const auto& report : stats.reports) {
      std::string provenance;
      if (report.stress) {
        provenance += " stress=" + jaguar::Hex64(report.stress_seed);
      }
      if (report.compile_mode == jaguar::CompileMode::kScheduled) {
        provenance += " schedule=" + jaguar::Hex64(report.schedule_seed);
      }
      if (report.chaos) {
        provenance += " chaos=" + jaguar::Hex64(report.chaos_seed);
      }
      std::printf("  [%s]%s seed=%llu%s %s\n", DiscrepancyName(report.kind),
                  report.duplicate ? " (duplicate)" : "",
                  static_cast<unsigned long long>(report.seed_id), provenance.c_str(),
                  report.detail.c_str());
      for (jaguar::BugId bug : report.root_causes) {
        std::printf("      cause: %s\n", jaguar::BugName(bug));
      }
      if (report.triaged) {
        std::printf("      %s\n", report.triage.ToString().c_str());
      }
    }
    if (params.chaos.rate_pct > 0) {
      // The chaos_check.sh contract: both arms print these, and the clean digests must match.
      std::printf("  clean-digest: %s\n", stats.CleanDigest().c_str());
      std::printf("  quarantined: %d\n", stats.seeds_quarantined);
      std::printf("  chaos-excluded: %d\n", stats.seeds_run - stats.clean_seeds);
    }
    std::printf("\n");
  }
  if (!ran_any) {
    std::fprintf(stderr, "error: unknown vendor '%s' (expected hotsniff, openjade, or artree)\n",
                 options.vm.c_str());
    return 1;
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (!options.trace_out.empty()) {
    // Campaigns run many distinct programs, so function indices carry no single name table;
    // events render with the f<index> fallback.
    if (!jaguar::observe::WriteTextFile(options.trace_out,
                                        jaguar::observe::EventsToJsonl(hub.DrainAll(), {}))) {
      std::fprintf(stderr, "error: cannot write %s\n", options.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %s (%llu events kept, %llu dropped)\n",
                 options.trace_out.c_str(),
                 static_cast<unsigned long long>(hub.total_pushed() - hub.total_dropped()),
                 static_cast<unsigned long long>(hub.total_dropped()));
  }
  if (!options.metrics_out.empty()) {
    if (!jaguar::observe::WriteTextFile(options.metrics_out, registry.PrometheusText())) {
      std::fprintf(stderr, "error: cannot write %s\n", options.metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: %s\n", options.metrics_out.c_str());
  }
  if (!options.bench_out.empty()) {
    const jaguar::observe::HistogramSnapshot passes =
        registry.SumHistograms("jaguar_jit_pass_compile_us");
    const uint64_t compiles =
        registry.GetCounter("jaguar_jit_compilations_total", "JIT compilations (method + OSR)")
            ->value();
    jaguar::Json bench = jaguar::Json::Object();
    bench.Set("bench", std::string("vm"));
    bench.Set("schema", 1);
    bench.Set("compile_mode", std::string(jaguar::CompileModeName(options.compile_mode)));
    bench.Set("isolation", std::string(artemis::IsolationModeName(options.isolation)));
    bench.Set("seeds", total_seeds);
    bench.Set("vm_invocations", total_invocations);
    bench.Set("wall_seconds", wall_seconds);
    bench.Set("seeds_per_second",
              wall_seconds > 0 ? static_cast<double>(total_seeds) / wall_seconds : 0.0);
    bench.Set("invocations_per_second",
              wall_seconds > 0 ? static_cast<double>(total_invocations) / wall_seconds : 0.0);
    bench.Set("jit_compilations_per_second",
              wall_seconds > 0 ? static_cast<double>(compiles) / wall_seconds : 0.0);
    bench.Set("mean_pass_compile_us", passes.Mean());
    bench.Set("p95_pass_compile_us", passes.Quantile(0.95));
    bench.Set("interpreter_mips", InterpreterMips());
    bench.Set("observe", registry.ToJson());
    if (!jaguar::observe::WriteTextFile(options.bench_out, bench.Dump() + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n", options.bench_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "bench: %s\n", options.bench_out.c_str());
  }
  return 0;
}
