// A miniature validation campaign from the command line.
//
//   ./fuzz_campaign [num_seeds] [vendor]
//
// vendor ∈ {hotsniff, openjade, artree} (default: all three). Prints a live-ish report of
// what Artemis finds — the CLI equivalent of the paper's testing campaign.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/artemis/campaign/campaign.h"

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 20;
  const char* vendor_filter = argc > 2 ? argv[2] : nullptr;

  for (const jaguar::VmConfig& vm : jaguar::AllVendors()) {
    if (vendor_filter != nullptr) {
      std::string lower = vm.name;
      for (auto& c : lower) {
        c = static_cast<char>(std::tolower(c));
      }
      if (lower != vendor_filter) {
        continue;
      }
    }

    artemis::CampaignParams params;
    params.num_seeds = seeds;
    params.validator.max_iter = 8;
    if (vm.name == "Artree") {
      params.validator.jonm.synth.min_bound = 20'000;
      params.validator.jonm.synth.max_bound = 50'000;
    } else {
      params.validator.jonm.synth.min_bound = 5'000;
      params.validator.jonm.synth.max_bound = 10'000;
    }

    const artemis::CampaignStats stats = artemis::RunCampaign(vm, params);
    std::printf("%s\n", stats.ToString().c_str());
    for (const auto& report : stats.reports) {
      std::printf("  [%s]%s seed=%llu %s\n", DiscrepancyName(report.kind),
                  report.duplicate ? " (duplicate)" : "",
                  static_cast<unsigned long long>(report.seed_id), report.detail.c_str());
      for (jaguar::BugId bug : report.root_causes) {
        std::printf("      cause: %s\n", jaguar::BugName(bug));
      }
    }
    std::printf("\n");
  }
  return 0;
}
