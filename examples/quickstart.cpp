// Quickstart: the whole pipeline on one small program.
//
//   1. Parse and type-check a Jaguar program.
//   2. Compile it to bytecode and run it on the interpreter and on a tiered-JIT VM.
//   3. Derive a JoNM mutant and validate the VM with Algorithm 1.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/artemis/mutate/jonm.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/lang/parser.h"
#include "src/jaguar/lang/printer.h"
#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/vm/engine.h"

namespace {

constexpr const char* kProgram = R"(
int total = 0;

int weigh(int x) {
  return (x * 7 + 3) % 101;
}

void work(int rounds) {
  for (int i = 0; i < rounds; i++) {
    total += weigh(i);
  }
}

int main() {
  work(40);
  print(total);
  return 0;
}
)";

}  // namespace

int main() {
  // 1. Front end: parse + type-check. (Throws jaguar::SyntaxError on bad input.)
  jaguar::Program program = jaguar::ParseProgram(kProgram);
  jaguar::Check(program);
  std::printf("parsed %zu globals, %zu functions\n\n", program.globals.size(),
              program.functions.size());

  // 2. Compile to bytecode; run on the pure interpreter and on the HotSpot-like VM.
  const jaguar::BcProgram bytecode = jaguar::CompileProgram(program);

  const jaguar::RunOutcome interp =
      jaguar::RunProgram(bytecode, jaguar::InterpreterOnlyConfig());
  std::printf("interpreter:   status=%s output=%s", RunStatusName(interp.status),
              interp.output.c_str());

  jaguar::VmConfig vm = jaguar::HotSniffConfig().WithoutBugs();
  // Tiny thresholds so this small demo actually compiles something.
  vm.tiers[0].invoke_threshold = 10;
  vm.tiers[1].invoke_threshold = 25;
  const jaguar::RunOutcome jit = jaguar::RunProgram(bytecode, vm);
  std::printf("tiered JIT:    status=%s output=%s", RunStatusName(jit.status),
              jit.output.c_str());
  std::printf("JIT trace:     %s\n\n", jit.trace.ToString().c_str());

  // 3. One JoNM mutant, printed, then the full Algorithm 1 validation loop.
  jaguar::Rng rng(2026);
  artemis::JonmParams jonm;
  jonm.synth.min_bound = 50;
  jonm.synth.max_bound = 200;
  artemis::MutationResult mutation = artemis::JoNM(program, jonm, rng);
  std::printf("JoNM applied %zu mutation(s):", mutation.applied.size());
  for (const auto& record : mutation.applied) {
    std::printf(" %s(%s)", MutatorName(record.kind), record.method.c_str());
  }
  std::printf("\n--- mutant source ---\n%s--------------------\n\n",
              jaguar::PrintProgram(mutation.mutant).c_str());

  artemis::ValidatorParams params;
  params.jonm = jonm;
  params.max_iter = 8;
  const artemis::ValidationReport report = artemis::Validate(program, vm, params, rng);
  std::printf("Validate() ran %zu mutants: %d discrepancies (expected 0 — this VM config "
              "carries no defects)\n",
              report.mutants.size(), report.Discrepancies());
  int new_traces = 0;
  for (const auto& verdict : report.mutants) {
    new_traces += verdict.explored_new_trace ? 1 : 0;
  }
  std::printf("%d/%zu mutants explored a different JIT compilation choice than the seed\n",
              new_traces, report.mutants.size());
  return 0;
}
