// jaguar_cli — the standalone driver for the Jaguar toolchain.
//
//   jaguar_cli run <file.jag> [vendor]        execute a program (default vendor: reference)
//   jaguar_cli trace <file.jag> [vendor]      execute and print the JIT-trace summary +
//                                             the first temperature vectors (§3.1)
//   jaguar_cli disasm <file.jag>              type-check and print the bytecode
//   jaguar_cli ir <file.jag> <function> <tier>  print the optimized HIR of one function
//   jaguar_cli validate <file.jag> [vendor]   treat the file as a seed: run Algorithm 1
//                                             against the (defective) vendor VM
//
// vendor ∈ {interp, reference, hotsniff, openjade, artree}.
//
// Flags (any mode):
//   --verify[=off|boundary|every-pass]   run the IR/LIR invariant verifier inside the JIT
//                                        pipeline (bare --verify means every-pass); a
//                                        violated invariant surfaces as a VM crash naming
//                                        the offending stage and invariant
//   --triage                             (validate mode) pass-bisect each discrepancy and
//                                        print the structured attribution
//   --stress-seeds K                     (validate mode) additionally re-run the seed at K
//                                        seeded stress points (perturbed pass sets/orders/
//                                        thresholds); each must stay interpreter-identical
//   --compile-mode sync|background|scheduled
//                                        when JIT artifacts install: sync (on the request
//                                        point), background (free-running workers), or
//                                        scheduled (workers + deterministic install points;
//                                        the schedule seed is the file's content hash, so
//                                        the same file always replays the same timeline)
//   --compile-threads N                  background compiler worker threads
//   --trace[=off|boundary|full]          record VM/JIT events during run/trace modes
//   --trace-out PATH                     write the recorded events as Chrome trace_event
//                                        JSONL (implies --trace=full if no level was given)
//   --metrics-out PATH                   write the run's metrics registry as Prometheus text

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "examples/cli_common.h"
#include "src/artemis/triage/triage.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/bytecode/disasm.h"
#include "src/jaguar/jit/pipeline.h"
#include "src/jaguar/lang/lexer.h"
#include "src/jaguar/lang/parser.h"
#include "src/jaguar/lang/typecheck.h"
#include "src/jaguar/observe/tracer.h"
#include "src/jaguar/support/json.h"
#include "src/jaguar/vm/engine.h"

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void PrintOutcome(const jaguar::RunOutcome& out) {
  std::fputs(out.output.c_str(), stdout);
  std::fprintf(stderr, "-- status: %s, steps: %llu\n", RunStatusName(out.status),
               static_cast<unsigned long long>(out.steps));
  if (out.status == jaguar::RunStatus::kVmCrash) {
    std::fprintf(stderr, "-- VM CRASH in %s (%s): %s\n",
                 jaguar::ComponentName(out.crash_component), out.crash_kind.c_str(),
                 out.crash_message.c_str());
  }
  for (jaguar::BugId bug : out.fired_bugs) {
    std::fprintf(stderr, "-- defect fired: %s\n", jaguar::BugName(bug));
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: jaguar_cli run|trace|disasm|validate <file.jag> [vendor]\n"
               "       jaguar_cli ir <file.jag> <function> <tier>\n"
               "flags: --verify[=off|boundary|every-pass]  --triage --stress-seeds K (validate mode)\n"
               "       --compile-mode sync|background|scheduled  --compile-threads N\n"
               "       --trace[=off|boundary|full]  --trace-out PATH  --metrics-out PATH\n");
  return 2;
}

// Writes the observability artifacts of a single-program run: the telemetry event window as
// Chrome trace_event JSONL (function indices resolved against the compiled program's name
// table) and the metrics registry as Prometheus text. Returns 0, or 1 on I/O failure.
int WriteObservability(const cli::CommonOptions& options, const jaguar::BcProgram& bytecode,
                       const jaguar::RunOutcome* out,
                       const jaguar::observe::MetricsRegistry& registry) {
  if (!options.trace_out.empty() && out != nullptr) {
    std::vector<std::string> names;
    names.reserve(bytecode.functions.size());
    for (const auto& fn : bytecode.functions) {
      names.push_back(fn.name);
    }
    static const std::vector<jaguar::observe::TraceEvent> kNoEvents;
    const auto& events = out->telemetry != nullptr ? out->telemetry->events : kNoEvents;
    if (!jaguar::observe::WriteTextFile(options.trace_out,
                                        jaguar::observe::EventsToJsonl(events, names))) {
      std::fprintf(stderr, "error: cannot write %s\n", options.trace_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "-- trace: %s (%zu events)\n", options.trace_out.c_str(),
                 events.size());
  }
  if (!options.metrics_out.empty()) {
    if (!jaguar::observe::WriteTextFile(options.metrics_out, registry.PrometheusText())) {
      std::fprintf(stderr, "error: cannot write %s\n", options.metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "-- metrics: %s\n", options.metrics_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const cli::CommonOptions options = cli::ParseArgs(argc, argv);
  const jaguar::VerifyLevel verify = options.verify;
  const bool triage = options.triage;
  const std::vector<std::string>& args = options.positional;
  if (args.size() < 2) {
    return Usage();
  }
  const std::string mode = args[0];
  const std::string source = ReadFile(args[1].c_str());

  try {
    jaguar::Program program = jaguar::ParseProgram(source);
    jaguar::Check(program);
    const jaguar::BcProgram bytecode = jaguar::CompileProgram(program);

    if (mode == "disasm") {
      std::fputs(jaguar::Disassemble(bytecode).c_str(), stdout);
      return 0;
    }

    if (mode == "ir") {
      if (args.size() < 4) {
        return Usage();
      }
      const int fn = [&] {
        for (size_t i = 0; i < bytecode.functions.size(); ++i) {
          if (bytecode.functions[i].name == args[2]) {
            return static_cast<int>(i);
          }
        }
        std::fprintf(stderr, "no function named '%s'\n", args[2].c_str());
        std::exit(2);
      }();
      const int tier = std::atoi(args[3].c_str());
      jaguar::VmConfig config = jaguar::ReferenceJitConfig();
      config.verify_level = verify;
      jaguar::IrFunction ir =
          jaguar::CompileToIr(bytecode, fn, tier, -1, config, nullptr, nullptr, nullptr);
      std::fputs(jaguar::IrToString(ir).c_str(), stdout);
      return 0;
    }

    const std::string vendor_name =
        !options.vm.empty() ? options.vm : (args.size() > 2 ? args[2] : "reference");
    jaguar::VmConfig vendor = cli::VendorByName(vendor_name);
    vendor.verify_level = verify;
    // Content-hash schedule seed: the same file + flags always replays the same install
    // timeline (validate mode picks its stress base the same way). run/trace apply it to the
    // vendor directly; validate threads it through ValidatorParams so only the JIT runs of
    // Algorithm 1 move off the execution thread (the interpreter references stay sync).
    jaguar::CompileConfig compile = cli::CompileOptionsOf(options);
    if (compile.mode == jaguar::CompileMode::kScheduled) {
      compile.schedule_seed = jaguar::Fnv1a64(source);
    }
    if (mode == "run" || mode == "trace") {
      vendor.compile = compile;
    }

    // Observability: --trace-out implies full event tracing unless a level was given;
    // --metrics-out attaches a registry that every run (validate included) flushes into.
    vendor.trace_level = options.trace;
    if (!options.trace_out.empty() && !options.trace_given) {
      vendor.trace_level = jaguar::observe::TraceLevel::kFull;
    }
    jaguar::observe::MetricsRegistry registry;
    jaguar::observe::Observer observer;
    if (!options.metrics_out.empty()) {
      observer.metrics = &registry;
      vendor.observer = &observer;
    }

    if (mode == "run") {
      const jaguar::RunOutcome out = jaguar::RunProgram(bytecode, vendor);
      PrintOutcome(out);
      return WriteObservability(options, bytecode, &out, registry);
    }

    if (mode == "trace") {
      vendor.record_full_trace = true;
      const jaguar::RunOutcome out = jaguar::RunProgram(bytecode, vendor);
      PrintOutcome(out);
      std::fprintf(stderr, "-- %s\n", out.trace.ToString().c_str());
      if (out.full_trace != nullptr) {
        const size_t show = out.full_trace->vectors.size() < 40
                                ? out.full_trace->vectors.size()
                                : static_cast<size_t>(40);
        for (size_t i = 0; i < show; ++i) {
          const auto& v = out.full_trace->vectors[i];
          const std::string& name =
              bytecode.functions[static_cast<size_t>(v.func)].name;
          std::fprintf(stderr, "   %s\n", v.ToString(name).c_str());
        }
        if (out.full_trace->vectors.size() > show) {
          std::fprintf(stderr, "   ... %zu more calls\n",
                       out.full_trace->vectors.size() - show);
        }
      }
      return WriteObservability(options, bytecode, &out, registry);
    }

    if (mode == "validate") {
      artemis::ValidatorParams params;
      params.max_iter = 8;
      params.stress_seeds = options.stress_seeds;
      // One fixed stream for the CLI (campaign drivers mix the seed id in instead): the same
      // file + vendor + K always replays the same K compilation-space points.
      params.stress_seed_base = jaguar::Fnv1a64(source);
      params.compile = compile;
      cli::ApplyPaperSynthBounds(vendor_name, &params);
      jaguar::Rng rng(20'26);
      const artemis::ValidationReport report =
          artemis::Validate(program, vendor, params, rng);
      if (!report.seed_usable) {
        std::fprintf(stderr, "seed unusable: %s\n", report.seed_unusable_reason.c_str());
        return 1;
      }
      std::printf("seed ok; %zu mutants, %d discrepancies", report.mutants.size(),
                  report.Discrepancies());
      if (!report.stress_points.empty()) {
        std::printf("; %zu stress points, %d stress discrepancies",
                    report.stress_points.size(), report.StressDiscrepancies());
      }
      std::printf("\n");
      for (const artemis::StressVerdict& point : report.stress_points) {
        if (point.kind == artemis::DiscrepancyKind::kNone) {
          continue;
        }
        std::printf("stress %s: %s — %s\n", jaguar::Hex64(point.stress_seed).c_str(),
                    DiscrepancyName(point.kind), point.detail.c_str());
        for (jaguar::BugId bug : point.suspected_bugs) {
          std::printf("  root cause: %s\n", jaguar::BugName(bug));
        }
        if (triage) {
          artemis::TriageParams tparams;
          tparams.stress = vendor.stress;
          tparams.stress.enabled = true;
          tparams.stress.seed = point.stress_seed;
          tparams.compile = compile;
          const artemis::TriageReport t = artemis::TriageDiscrepancy(program, vendor, tparams);
          std::printf("  %s\n", t.ToString().c_str());
        }
      }
      artemis::TriageParams plain_triage;
      plain_triage.compile = compile;
      if (report.seed_self_discrepancy && triage) {
        const artemis::TriageReport t =
            artemis::TriageDiscrepancy(program, vendor, plain_triage);
        std::printf("seed self-discrepancy %s\n", t.ToString().c_str());
      }
      for (size_t i = 0; i < report.mutants.size(); ++i) {
        const auto& verdict = report.mutants[i];
        if (verdict.kind == artemis::DiscrepancyKind::kNone) {
          continue;
        }
        std::printf("mutant %zu: %s — %s\n", i + 1, DiscrepancyName(verdict.kind),
                    verdict.detail.c_str());
        for (jaguar::BugId bug : verdict.suspected_bugs) {
          std::printf("  root cause: %s\n", jaguar::BugName(bug));
        }
        if (triage && verdict.mutant_program != nullptr) {
          const artemis::TriageReport t =
              artemis::TriageDiscrepancy(*verdict.mutant_program, vendor, plain_triage);
          std::printf("  %s\n", t.ToString().c_str());
        }
      }
      // Single-run trace files make no sense over a whole validation; metrics still do.
      if (WriteObservability(options, bytecode, nullptr, registry) != 0) {
        return 1;
      }
      return report.FoundAny() ? 3 : 0;
    }
  } catch (const jaguar::SyntaxError& e) {
    std::fprintf(stderr, "syntax error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
