// artemis_service — the durable campaign service from the command line.
//
//   ./artemis_service [service] --corpus-dir DIR [--vm NAME] [--rounds N] [--seeds N]
//                     [--threads N] [--verify[=LEVEL]] [--triage] [--stress-seeds K]
//                     [--compile-mode MODE] [--compile-threads N]
//                     [--resume] [--mutations N] [--no-admission]
//
//     Runs rounds of generate → mutate → validate over the evolving on-disk corpus in DIR
//     (src/artemis/service/service.h). --seeds sets the fresh generator seeds per round,
//     --mutations the corpus entries re-mutated per round; --no-admission freezes the corpus
//     (the fixed-seed baseline arm of EXPERIMENTS.md). Metrics land in
//     DIR/BENCH_campaign.json after every round; --resume continues a killed service from
//     its last completed round. The Prometheus exposition the service rewrites every round
//     defaults to DIR/metrics.prom; --metrics-out PATH redirects it. --trace[=LEVEL] turns
//     on VM/JIT event tracing in the workers (per-run counters still flow into the
//     registry either way). --compile-mode scheduled moves JIT compilation onto background
//     workers with one deterministic install schedule derived per work item (replayable,
//     resumable); --compile-mode background free-runs the workers for throughput.
//
//   ./artemis_service campaign --corpus-dir DIR [--vm NAME] [--seeds N] [--threads N]
//                     [--verify[=LEVEL]] [--triage] [--resume] [--stop-after N]
//
//     Runs a fixed-size durable campaign journaled to DIR/campaign_journal.jsonl
//     (src/artemis/service/durable.h). With --resume, everything (vendor, params) is
//     reconstructed from the journal header and the campaign continues from the first
//     unfinished seed. On completion prints `digest: <16 hex>` — the OutcomeDigest over
//     exactly the SameOutcome-compared fields — which scripts/soak_check.sh compares between
//     a SIGKILLed-and-resumed campaign and an uninterrupted reference run. --stop-after N
//     executes at most N fresh seeds then exits 75 (deterministic partial segment).
//
//   Both modes handle SIGTERM/SIGINT gracefully: in-flight work finishes, the journal and
//   metrics files are flushed, and the process exits 0 (service: after the current round)
//   or 75 (campaign: resumable partial segment). --isolation sandbox forks each seed into
//   a rlimit-capped child so harness crashes/hangs quarantine the seed instead of killing
//   the campaign; --chaos-pct N injects real faults into N% of sandboxed seeds (see
//   scripts/chaos_check.sh).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <exception>
#include <string>

#include "examples/cli_common.h"
#include "src/artemis/service/durable.h"
#include "src/artemis/service/service.h"

namespace {

// Graceful-shutdown flag (satellite of the sandbox work): SIGTERM/SIGINT flip it, the
// campaign/service loops observe it at their checkpoint boundaries (per-seed for durable
// campaigns, per-round for the service), finish in-flight work, flush the journal and
// metrics files, and the process exits normally — 0 for a completed run, 75 for a
// resumable partial one.
std::atomic<bool> g_cancel{false};

extern "C" void HandleShutdownSignal(int) {
  g_cancel.store(true, std::memory_order_relaxed);  // async-signal-safe: lock-free store
}

void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads so shutdown is prompt
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

int Usage() {
  std::fprintf(stderr,
               "usage: artemis_service [service] --corpus-dir DIR [--vm NAME] [--rounds N]\n"
               "           [--seeds N] [--mutations N] [--threads N] [--verify[=LEVEL]]\n"
               "           [--triage] [--stress-seeds K] [--compile-mode MODE]\n"
               "           [--compile-threads N] [--resume] [--no-admission]\n"
               "           [--isolation MODE] [--exec-timeout-ms N] [--exec-rss-mb N]\n"
               "           [--chaos-pct N] [--chaos-seed S] [--chaos-dry-run]\n"
               "           [--trace[=LEVEL]] [--metrics-out PATH]\n"
               "       artemis_service campaign --corpus-dir DIR [--vm NAME] [--seeds N]\n"
               "           [--threads N] [--verify[=LEVEL]] [--triage] [--resume]\n"
               "           [--isolation MODE] [--chaos-pct N] [--stop-after N]\n");
  return 2;
}

artemis::CampaignParams BaseParams(const cli::CommonOptions& options,
                                   const std::string& vm_name) {
  artemis::CampaignParams params;
  params.num_threads = options.threads;
  params.triage = options.triage;
  params.validator.max_iter = 8;
  params.validator.stress_seeds = options.stress_seeds;
  params.validator.compile = cli::CompileOptionsOf(options);
  cli::ApplyPaperSynthBounds(vm_name, &params.validator);
  cli::ApplySandboxOptions(options, &params);
  return params;
}

// The chaos_check.sh contract lines (campaign mode, chaos arm or dry-run arm only).
void PrintChaosSummary(const artemis::CampaignStats& stats) {
  std::printf("clean-digest: %s\n", stats.CleanDigest().c_str());
  std::printf("quarantined: %d\n", stats.seeds_quarantined);
  std::printf("chaos-excluded: %d\n", stats.seeds_run - stats.clean_seeds);
}

int RunCampaignMode(const cli::CommonOptions& options, int stop_after) {
  const std::string journal = options.corpus_dir + "/campaign_journal.jsonl";
  artemis::DurableResult result;
  bool chaos_active = false;
  if (options.resume) {
    // Vendor, verify level, and params all come from the journal header.
    result = artemis::ResumeCampaign(journal, &g_cancel);
    chaos_active = result.stats.clean_seeds > 0 || result.stats.seeds_quarantined > 0;
  } else {
    const std::string vm_name = options.vm.empty() ? "hotsniff" : options.vm;
    jaguar::VmConfig vm = cli::VendorByName(vm_name);
    vm.verify_level = options.verify;
    artemis::CampaignParams params = BaseParams(options, vm_name);
    params.num_seeds = options.seeds >= 0 ? options.seeds : 20;
    chaos_active = params.chaos.rate_pct > 0;
    artemis::DurableOptions durable;
    durable.journal_path = journal;
    durable.stop_after_seeds = stop_after;
    durable.cancel = &g_cancel;
    result = artemis::RunDurableCampaign(vm, params, durable);
  }
  std::fprintf(stderr, "%s\n(replayed %d seeds, executed %d)\n",
               result.stats.ToString().c_str(), result.replayed_seeds,
               result.executed_seeds);
  if (!result.complete) {
    std::printf("partial\n");
    return 75;  // EX_TEMPFAIL: resume to finish
  }
  std::printf("digest: %s\n", result.stats.OutcomeDigest().c_str());
  if (chaos_active) {
    PrintChaosSummary(result.stats);
  }
  return 0;
}

int RunServiceMode(const cli::CommonOptions& options, int mutations, bool admission) {
  const std::string vm_name = options.vm.empty() ? "hotsniff" : options.vm;
  jaguar::VmConfig vm = cli::VendorByName(vm_name);
  vm.verify_level = options.verify;
  vm.trace_level = options.trace;

  artemis::ServiceParams params;
  params.campaign = BaseParams(options, vm_name);
  params.corpus_dir = options.corpus_dir;
  params.prom_path = options.metrics_out;  // "" → DIR/metrics.prom
  params.rounds = options.rounds >= 0 ? options.rounds : 4;
  if (options.seeds >= 0) {
    params.fresh_seeds_per_round = options.seeds;
  }
  if (mutations >= 0) {
    params.corpus_mutations_per_round = mutations;
  }
  params.admission = admission;
  params.resume = options.resume;
  params.cancel = &g_cancel;

  const artemis::ServiceStats stats = artemis::RunService(vm, params);
  std::printf("%s\n", stats.ToString().c_str());
  if (!stats.trajectory.empty()) {
    const artemis::ServiceSnapshot& last = stats.trajectory.back();
    std::printf("throughput: %.1f VM invocations/s; corpus %d entries (%.2f top-tier)\n",
                last.invocations_per_second, last.corpus_size, last.corpus_frac_top_tier);
  }
  std::printf("metrics: %s/BENCH_campaign.json + %s\n", params.corpus_dir.c_str(),
              params.prom_path.empty() ? (params.corpus_dir + "/metrics.prom").c_str()
                                       : params.prom_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  InstallShutdownHandlers();
  cli::CommonOptions options = cli::ParseArgs(argc, argv);

  // Driver-local options ride in positional.
  std::string mode = "service";
  int stop_after = 0;
  int mutations = -1;
  bool admission = true;
  for (size_t i = 0; i < options.positional.size(); ++i) {
    const std::string& arg = options.positional[i];
    if (arg == "service" || arg == "campaign") {
      mode = arg;
    } else if (arg == "--stop-after" && i + 1 < options.positional.size()) {
      stop_after = std::atoi(options.positional[++i].c_str());
    } else if (arg.rfind("--stop-after=", 0) == 0) {
      stop_after = std::atoi(arg.c_str() + 13);
    } else if (arg == "--mutations" && i + 1 < options.positional.size()) {
      mutations = std::atoi(options.positional[++i].c_str());
    } else if (arg.rfind("--mutations=", 0) == 0) {
      mutations = std::atoi(arg.c_str() + 12);
    } else if (arg == "--no-admission") {
      admission = false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (options.corpus_dir.empty()) {
    std::fprintf(stderr, "--corpus-dir is required\n");
    return Usage();
  }

  try {
    if (mode == "campaign") {
      return RunCampaignMode(options, stop_after);
    }
    return RunServiceMode(options, mutations, admission);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
