// Shared command-line plumbing for the example drivers.
//
// fuzz_campaign, jaguar_cli, and artemis_service accept the same core flags; this header
// owns their parsing (and the paper's per-vendor synthesis bounds) so each driver only
// interprets the options it cares about:
//
//   --threads N | --threads=N     worker threads (0 = hardware concurrency)
//   --seeds N   | --seeds=N       seeds per campaign / fresh seeds per service round
//   --vm NAME   | --vm=NAME       vendor: interp|reference|hotsniff|openjade|artree
//   --verify[=off|boundary|every-pass]   IR/LIR invariant verifier (bare = every-pass)
//   --triage                      pass-bisect every discrepancy
//   --corpus-dir PATH             on-disk corpus directory (service / durable drivers)
//   --resume                      continue from an existing journal instead of starting fresh
//   --rounds N                    service rounds to run in this invocation
//   --stress-seeds K              stress compilation-space points sampled per program (0 = off)
//   --compile-mode MODE           sync|background|scheduled: when JIT artifacts are installed
//                                 (scheduled = deterministic per-seed install schedules)
//   --compile-threads N           background compiler worker threads (background/scheduled)
//   --isolation MODE              in_process|sandbox: where each seed shard executes
//                                 (sandbox = fork-per-seed with quarantine on crash/hang)
//   --exec-timeout-ms N           sandbox wall-clock watchdog per child (default 10000)
//   --exec-rss-mb N               sandbox RLIMIT_AS cap per child in MiB (0 = uncapped)
//   --chaos-pct N                 percent of seeds that inject a real fault (0 = off)
//   --chaos-seed S                chaos selection/fault-kind seed (default base campaign seed)
//   --chaos-dry-run               select the same chaos seeds but inject nothing (the
//                                 fault-free reference arm of scripts/chaos_check.sh)
//   --trace[=off|boundary|full]   VM/JIT event tracing level (bare = full)
//   --trace-out PATH              write the recorded trace as Chrome trace_event JSONL
//   --metrics-out PATH            write the metrics registry as Prometheus text exposition
//   --bench-out PATH              write a BENCH_*.json performance summary (fuzz_campaign)
//
// Anything unrecognized lands in `positional` for the driver's own grammar.

#ifndef EXAMPLES_CLI_COMMON_H_
#define EXAMPLES_CLI_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cctype>
#include <string>
#include <vector>

#include "src/artemis/campaign/campaign.h"
#include "src/artemis/sandbox/sandbox.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/observe/events.h"
#include "src/jaguar/vm/config.h"

namespace cli {

struct CommonOptions {
  int threads = 0;          // 0 → hardware concurrency
  int seeds = -1;           // -1 → driver default
  int rounds = -1;          // -1 → driver default
  std::string vm;           // "" → driver default (lower-cased vendor name)
  std::string corpus_dir;
  bool resume = false;
  bool triage = false;
  int stress_seeds = 0;     // stress points sampled per validated program (0 = axis off)
  jaguar::CompileMode compile_mode = jaguar::CompileMode::kSync;
  int compile_threads = 0;  // 0 → CompileConfig default
  artemis::IsolationMode isolation = artemis::IsolationMode::kInProcess;
  int exec_timeout_ms = -1;  // -1 → SandboxLimits default
  int exec_rss_mb = -1;      // -1 → SandboxLimits default (uncapped)
  int chaos_pct = 0;         // percent of seeds that arm a chaos fault (0 = off)
  uint64_t chaos_seed = 0;   // 0 → driver defaults to its base campaign seed
  bool chaos_dry_run = false;
  jaguar::VerifyLevel verify = jaguar::VerifyLevel::kOff;
  jaguar::observe::TraceLevel trace = jaguar::observe::TraceLevel::kOff;
  bool trace_given = false;   // --trace appeared (lets drivers infer full from --trace-out)
  std::string trace_out;      // "" → no trace file
  std::string metrics_out;    // "" → no Prometheus file
  std::string bench_out;      // "" → no BENCH json
  std::vector<std::string> positional;
};

inline jaguar::VerifyLevel ParseVerifyLevel(const char* name) {
  if (std::strcmp(name, "off") == 0) {
    return jaguar::VerifyLevel::kOff;
  }
  if (std::strcmp(name, "boundary") == 0) {
    return jaguar::VerifyLevel::kBoundary;
  }
  if (std::strcmp(name, "every-pass") == 0) {
    return jaguar::VerifyLevel::kEveryPass;
  }
  std::fprintf(stderr, "unknown verify level '%s' (off|boundary|every-pass)\n", name);
  std::exit(2);
}

// Vendor lookup by lower-cased CLI name. Exits with usage status 2 on an unknown name.
inline jaguar::VmConfig VendorByName(const std::string& name) {
  if (name == "interp") {
    return jaguar::InterpreterOnlyConfig();
  }
  if (name == "reference") {
    return jaguar::ReferenceJitConfig();
  }
  if (name == "hotsniff") {
    return jaguar::HotSniffConfig();
  }
  if (name == "openjade") {
    return jaguar::OpenJadeConfig();
  }
  if (name == "artree") {
    return jaguar::ArtreeConfig();
  }
  std::fprintf(stderr, "unknown vendor '%s' (interp|reference|hotsniff|openjade|artree)\n",
               name.c_str());
  std::exit(2);
}

inline std::string ToLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

// The paper's per-vendor loop-bound ranges (§4.1 figures reproduced by bench/): Artree tiers
// up much later than the other vendors, so its synthesized loops must run hotter.
inline void ApplyPaperSynthBounds(const std::string& vm_name, artemis::ValidatorParams* params) {
  if (ToLower(vm_name) == "artree") {
    params->jonm.synth.min_bound = 20'000;
    params->jonm.synth.max_bound = 50'000;
  } else {
    params->jonm.synth.min_bound = 5'000;
    params->jonm.synth.max_bound = 10'000;
  }
}

// Translates the --compile-mode/--compile-threads flags into a CompileConfig. The schedule
// seed is NOT set here: campaigns derive one per corpus seed (DeriveScheduleSeed), and
// single-program drivers default to 0.
inline jaguar::CompileConfig CompileOptionsOf(const CommonOptions& options) {
  jaguar::CompileConfig compile;
  compile.mode = options.compile_mode;
  if (options.compile_threads > 0) {
    compile.threads = options.compile_threads;
  }
  return compile;
}

// Applies the isolation/sandbox/chaos flags to a campaign. Negative timeout/RSS values keep
// the SandboxLimits defaults. When --chaos-seed was not given, the chaos selection seed
// defaults to the campaign's base_seed — so the sandbox chaos arm and the in-process
// --chaos-dry-run reference arm of scripts/chaos_check.sh agree on the seed set by default.
inline void ApplySandboxOptions(const CommonOptions& options, artemis::CampaignParams* params) {
  params->isolation = options.isolation;
  if (options.exec_timeout_ms >= 0) {
    params->sandbox.exec_timeout_ms = options.exec_timeout_ms;
  }
  if (options.exec_rss_mb >= 0) {
    params->sandbox.exec_rss_mb = options.exec_rss_mb;
  }
  params->chaos.rate_pct = options.chaos_pct;
  params->chaos.dry_run = options.chaos_dry_run;
  if (options.chaos_pct > 0) {
    params->chaos.seed = options.chaos_seed != 0 ? options.chaos_seed : params->base_seed;
  }
}

// Parses every common flag out of argv; unrecognized arguments are returned in
// `positional`, in order. Exits with status 2 on a malformed common flag.
inline CommonOptions ParseArgs(int argc, char** argv) {
  CommonOptions options;
  auto int_flag = [&](const char* name, int i, int* out) -> int {
    const size_t len = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      *out = std::atoi(argv[i + 1]);
      return 2;
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      *out = std::atoi(argv[i] + len + 1);
      return 1;
    }
    return 0;
  };
  auto string_flag = [&](const char* name, int i, std::string* out) -> int {
    const size_t len = std::strlen(name);
    if (std::strcmp(argv[i], name) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      *out = argv[i + 1];
      return 2;
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      *out = argv[i] + len + 1;
      return 1;
    }
    return 0;
  };

  std::string compile_mode_name;
  std::string isolation_name;
  std::string chaos_seed_text;
  for (int i = 1; i < argc; ++i) {
    int consumed = 0;
    if ((consumed = int_flag("--threads", i, &options.threads)) != 0 ||
        (consumed = int_flag("--seeds", i, &options.seeds)) != 0 ||
        (consumed = int_flag("--rounds", i, &options.rounds)) != 0 ||
        (consumed = int_flag("--stress-seeds", i, &options.stress_seeds)) != 0 ||
        (consumed = int_flag("--compile-threads", i, &options.compile_threads)) != 0 ||
        (consumed = int_flag("--exec-timeout-ms", i, &options.exec_timeout_ms)) != 0 ||
        (consumed = int_flag("--exec-rss-mb", i, &options.exec_rss_mb)) != 0 ||
        (consumed = int_flag("--chaos-pct", i, &options.chaos_pct)) != 0 ||
        (consumed = string_flag("--vm", i, &options.vm)) != 0 ||
        (consumed = string_flag("--corpus-dir", i, &options.corpus_dir)) != 0) {
      i += consumed - 1;
    } else if ((consumed = string_flag("--isolation", i, &isolation_name)) != 0) {
      if (!artemis::ParseIsolationMode(isolation_name, &options.isolation)) {
        std::fprintf(stderr, "unknown isolation mode '%s' (in_process|sandbox)\n",
                     isolation_name.c_str());
        std::exit(2);
      }
      i += consumed - 1;
    } else if ((consumed = string_flag("--chaos-seed", i, &chaos_seed_text)) != 0) {
      options.chaos_seed = std::strtoull(chaos_seed_text.c_str(), nullptr, 0);
      i += consumed - 1;
    } else if (std::strcmp(argv[i], "--chaos-dry-run") == 0) {
      options.chaos_dry_run = true;
    } else if ((consumed = string_flag("--compile-mode", i, &compile_mode_name)) != 0) {
      if (!jaguar::ParseCompileMode(compile_mode_name, &options.compile_mode)) {
        std::fprintf(stderr, "unknown compile mode '%s' (sync|background|scheduled)\n",
                     compile_mode_name.c_str());
        std::exit(2);
      }
      i += consumed - 1;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      options.verify = jaguar::VerifyLevel::kEveryPass;
    } else if (std::strncmp(argv[i], "--verify=", 9) == 0) {
      options.verify = ParseVerifyLevel(argv[i] + 9);
    } else if ((consumed = string_flag("--trace-out", i, &options.trace_out)) != 0 ||
               (consumed = string_flag("--metrics-out", i, &options.metrics_out)) != 0 ||
               (consumed = string_flag("--bench-out", i, &options.bench_out)) != 0) {
      i += consumed - 1;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace = jaguar::observe::TraceLevel::kFull;
      options.trace_given = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      if (!jaguar::observe::ParseTraceLevel(argv[i] + 8, &options.trace)) {
        std::fprintf(stderr, "unknown trace level '%s' (off|boundary|full)\n", argv[i] + 8);
        std::exit(2);
      }
      options.trace_given = true;
    } else if (std::strcmp(argv[i], "--triage") == 0) {
      options.triage = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      options.resume = true;
    } else {
      options.positional.emplace_back(argv[i]);
    }
  }
  return options;
}

}  // namespace cli

#endif  // EXAMPLES_CLI_COMMON_H_
