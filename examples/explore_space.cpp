// Exploring a program's compilation space exhaustively (the paper's Figure 1, interactive).
//
// Because we own the simulated VM, the "ideal realization" of CSE (§3.2) is available: a
// forced compilation controller replays any per-call decision vector. This example builds the
// Figure 1 program, discovers its dynamic call sequence, enumerates all 2^n compilation
// choices, and cross-validates their outputs — first on a correct VM, then on one carrying a
// constant-folding defect, where some points of the space disagree and the bug is witnessed
// without any reference implementation.

// Usage: ./explore_space [--threads N]  (N=0 → all hardware threads; the exploration result
// is identical for every N — points land in mask-indexed slots).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/artemis/space/compilation_space.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/vm/engine.h"

namespace {

int g_threads = 1;

constexpr const char* kProgram = R"(
int shifty(int x) { return x + (1 << 33); }  // 1 << 33 == 2 (Java masks the shift count)
int bar() { return shifty(0); }
int foo() { return bar() + shifty(-1); }
int main() { print(foo()); return 0; }
)";

void Explore(const char* label, const jaguar::VmConfig& vm) {
  const jaguar::BcProgram bc = jaguar::CompileSource(kProgram);
  const artemis::SpaceExploration space =
      artemis::ExploreCompilationSpace(bc, vm, 5, g_threads);

  std::printf("%s: %zu dynamic calls -> %zu compilation choices\n", label,
              space.call_sites.size(), space.points.size());
  int disagreeing = 0;
  for (const auto& point : space.points) {
    if (!point.outcome.SameObservable(space.points[0].outcome)) {
      ++disagreeing;
      if (disagreeing <= 4) {
        std::printf("  choice #%llu diverges: [",
                    static_cast<unsigned long long>(point.mask + 1));
        for (size_t i = 0; i < space.call_sites.size(); ++i) {
          std::printf("%s%s", i > 0 ? " " : "",
                      ((point.mask >> i) & 1) ? "C" : "i");
        }
        std::string out = point.outcome.output;
        while (!out.empty() && out.back() == '\n') {
          out.pop_back();
        }
        std::printf("] output=%s (reference=%s)\n", out.c_str(),
                    space.reference_output.substr(0, space.reference_output.size() - 1).c_str());
      }
    }
  }
  if (space.all_agree) {
    std::printf("  all %zu outputs agree — the compilation space is consistent\n\n",
                space.points.size());
  } else {
    std::printf("  %d/%zu choices disagree — JIT bug witnessed by CSE alone\n\n", disagreeing,
                space.points.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
    }
  }
  Explore("correct VM", jaguar::HotSniffConfig().WithoutBugs());

  jaguar::VmConfig buggy = jaguar::HotSniffConfig().WithoutBugs();
  buggy.bugs = {jaguar::BugId::kFoldShiftUnmasked};
  Explore("VM with a constant-folding defect", buggy);
  return 0;
}
