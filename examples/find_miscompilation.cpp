// Finding (and shrinking) a real mis-compilation end to end.
//
// This example plays the role of a JIT-compiler tester: the HotSpot-like vendor VM carries a
// latent defect in its Global Code Motion pass (the JDK-8288975 model). We fuzz seeds, let
// Artemis explore each seed's compilation space with 8 JoNM mutants, and when a discrepancy
// appears we reduce the mutant with the Perses/C-Reduce-style reducer and print a compact
// bug report — the same workflow the paper's authors used to file 85 reports.

#include <cstdio>

#include "src/artemis/fuzzer/generator.h"
#include "src/artemis/reduce/reducer.h"
#include "src/artemis/validate/validator.h"
#include "src/jaguar/bytecode/compiler.h"
#include "src/jaguar/lang/printer.h"
#include "src/jaguar/vm/engine.h"

int main() {
  jaguar::VmConfig vm = jaguar::HotSniffConfig();  // the vendor VM, defects included
  vm.step_budget = 60'000'000;

  artemis::ValidatorParams params;
  params.max_iter = 8;
  params.jonm.synth.min_bound = 5'000;   // the paper's MIN/MAX for these thresholds
  params.jonm.synth.max_bound = 10'000;

  artemis::FuzzConfig fuzz;
  for (uint64_t seed_id = 1'000; seed_id < 1'200; ++seed_id) {
    jaguar::Program seed = artemis::GenerateProgram(fuzz, seed_id);
    jaguar::Rng rng(seed_id * 131 + 1);
    const artemis::ValidationReport report = artemis::Validate(seed, vm, params, rng);
    if (!report.seed_usable) {
      continue;
    }

    for (size_t i = 0; i < report.mutants.size(); ++i) {
      const artemis::MutantVerdict& verdict = report.mutants[i];
      if (verdict.kind == artemis::DiscrepancyKind::kNone) {
        continue;
      }
      std::printf("seed %llu, mutant %zu: %s\n  %s\n",
                  static_cast<unsigned long long>(seed_id), i + 1,
                  DiscrepancyName(verdict.kind), verdict.detail.c_str());
      for (const auto& record : verdict.mutations) {
        std::printf("  mutation: %s on %s\n", MutatorName(record.kind),
                    record.method.c_str());
      }
      for (jaguar::BugId bug : verdict.suspected_bugs) {
        std::printf("  root cause (ground truth): %s\n", jaguar::BugName(bug));
      }

      // Rebuild this mutant deterministically and shrink it while it still diverges from
      // its own interpreter run on this VM.
      jaguar::Rng replay(seed_id * 131 + 1);
      artemis::MutationResult mutation;
      for (size_t k = 0; k <= i; ++k) {
        mutation = artemis::JoNM(seed, params.jonm, replay);
      }
      auto diverges = [&](const jaguar::Program& candidate) {
        const jaguar::BcProgram bc = jaguar::CompileProgram(candidate);
        const jaguar::RunOutcome interp =
            jaguar::RunProgram(bc, jaguar::InterpreterOnlyConfig());
        const jaguar::RunOutcome jit = jaguar::RunProgram(bc, vm);
        if (interp.status == jaguar::RunStatus::kTimeout ||
            jit.status == jaguar::RunStatus::kTimeout) {
          return false;
        }
        return !jit.SameObservable(interp);
      };
      if (!diverges(mutation.mutant)) {
        std::printf("  (mutant not reproducible against the interpreter oracle — skipping "
                    "reduction)\n");
        continue;
      }
      artemis::ReductionStats stats;
      jaguar::Program reduced = artemis::ReduceProgram(mutation.mutant, diverges, &stats);
      std::printf("  reduced %zu -> %zu statements (%d rounds, %d candidate deletions)\n",
                  stats.initial_statements, stats.final_statements, stats.rounds,
                  stats.candidates_tried);
      std::printf("--- reduced bug-triggering program ---\n%s",
                  jaguar::PrintProgram(reduced).c_str());
      std::printf("--------------------------------------\n");
      return 0;  // one fully-worked bug report is the point of the example
    }
  }
  std::printf("no discrepancy found in this seed range (unexpected — try more seeds)\n");
  return 1;
}
